//! Multi-client sharing (paper §III-D).
//!
//! When a client uploads incremental data for a shared file, the cloud —
//! "besides storing the data" — forwards the *same* incremental data to
//! the other clients sharing it, with no additional computation: to the
//! uploader, a peer client is virtually equivalent to the cloud.
//! Conflicts on receiving clients reconcile exactly like on the cloud
//! (first write wins; the local edit survives as a conflict copy).

use deltacfs_kvstore::MemStore;
use deltacfs_net::{
    FaultSpec, FaultStats, FaultTopology, Link, LinkSpec, SimClock, UploadVerdict,
};
use deltacfs_obs::{Obs, Snapshot};
use deltacfs_vfs::Vfs;

use crate::client::{DeltaCfsClient, RemoteConflict};
use crate::config::DeltaCfsConfig;
use crate::persist;
use crate::protocol::{ApplyOutcome, ClientId, Payload, UpdateMsg, UpdatePayload, Version};
use crate::retry::{Courier, RetryPolicy, BACKOFF_BUCKETS_MS};
use crate::server::CloudServer;

struct Slot {
    client: DeltaCfsClient,
    fs: Vfs,
    link: Link,
    courier: Courier,
}

/// A cloud server with any number of attached DeltaCFS clients, all
/// sharing one folder.
///
/// # Example
///
/// ```
/// use deltacfs_core::{DeltaCfsConfig, SyncHub};
/// use deltacfs_net::{LinkSpec, SimClock};
///
/// let clock = SimClock::new();
/// let mut hub = SyncHub::new(clock.clone());
/// let a = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
/// let b = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
/// hub.fs_mut(a).create("/shared")?;
/// hub.fs_mut(a).write("/shared", 0, b"hi")?;
/// hub.pump();
/// clock.advance(4_000);
/// hub.pump();
/// assert_eq!(hub.fs(b).peek_all("/shared")?, b"hi");
/// # Ok::<(), deltacfs_vfs::VfsError>(())
/// ```
pub struct SyncHub {
    server: CloudServer,
    slots: Vec<Slot>,
    clock: SimClock,
    conflicts: Vec<(usize, RemoteConflict)>,
    server_outcomes: Vec<ApplyOutcome>,
    /// `Some` once [`SyncHub::enable_faults`] (one shared schedule) or
    /// [`SyncHub::enable_fault_topology`] (independent per-writer
    /// schedules) arms fault injection; the pump then runs through the
    /// reliability layer (couriers + server idempotency + crash/restart
    /// from the snapshot store).
    fault: Option<FaultTopology>,
    /// The server's durable snapshot, refreshed after every applied
    /// group; a simulated server crash reloads from here.
    store: MemStore,
    /// Duplicated group copies held back for out-of-order redelivery.
    deferred: Vec<Vec<UpdateMsg>>,
    /// Every `(client, path, version)` the server acknowledged as
    /// applied — the commit record fault tests check against.
    acked: Vec<(usize, String, Version)>,
    /// Observability bundle shared with every client. Default-disabled
    /// tracer; [`SyncHub::enable_observability`] installs a live one.
    obs: Obs,
}

impl std::fmt::Debug for SyncHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncHub")
            .field("clients", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl SyncHub {
    /// Creates a hub with no clients.
    pub fn new(clock: SimClock) -> Self {
        SyncHub {
            server: CloudServer::new(),
            slots: Vec::new(),
            clock,
            conflicts: Vec::new(),
            server_outcomes: Vec::new(),
            fault: None,
            store: MemStore::new(),
            deferred: Vec::new(),
            acked: Vec::new(),
            obs: Obs::new(),
        }
    }

    /// Installs a shared observability bundle: every attached client's
    /// trace events flow into `obs.tracer` (as do the hub's own wire,
    /// retry, and server events under actor names `client-<n>` and
    /// `server`), and courier backoff delays are recorded into the
    /// `retry_backoff_ms` histogram of `obs.registry`. Clients attached
    /// later inherit it.
    pub fn enable_observability(&mut self, obs: Obs) {
        self.obs = obs;
        let hist = self
            .obs
            .registry
            .histogram("retry_backoff_ms", BACKOFF_HELP, &BACKOFF_BUCKETS_MS);
        for slot in &mut self.slots {
            slot.client.set_obs(self.obs.clone());
            slot.courier.set_backoff_histogram(hist.clone());
        }
    }

    /// The hub's observability bundle (shared handles — cloning is cheap).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attaches a new client and returns its index.
    pub fn add_client(&mut self, cfg: DeltaCfsConfig, link_spec: LinkSpec) -> usize {
        let idx = self.slots.len();
        let mut client = DeltaCfsClient::new(ClientId(idx as u32 + 1), cfg, self.clock.clone());
        client.set_obs(self.obs.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        let mut courier = Courier::new(RetryPolicy::default(), courier_seed(0, idx));
        courier.set_backoff_histogram(self.obs.registry.histogram(
            "retry_backoff_ms",
            BACKOFF_HELP,
            &BACKOFF_BUCKETS_MS,
        ));
        self.slots.push(Slot {
            client,
            fs,
            link: Link::new(link_spec),
            courier,
        });
        idx
    }

    /// Arms a fault schedule: from now on every upload runs through the
    /// reliability layer — stop-and-wait couriers with seeded backoff,
    /// server-side `<CliID, VerCnt>` deduplication, and crash/restart
    /// from the persisted snapshot.
    ///
    /// Each courier's jitter stream is re-seeded from `spec.seed`, so
    /// one seed reproduces the entire run.
    pub fn enable_faults(&mut self, spec: FaultSpec) {
        let seed = spec.seed;
        let hist = self
            .obs
            .registry
            .histogram("retry_backoff_ms", BACKOFF_HELP, &BACKOFF_BUCKETS_MS);
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            slot.courier = Courier::new(RetryPolicy::default(), courier_seed(seed, idx));
            slot.courier.set_backoff_histogram(hist.clone());
        }
        self.fault = Some(FaultTopology::shared(spec));
        persist::save(&self.server, &mut self.store).expect("MemStore save cannot fail");
    }

    /// Arms one *independent* fault schedule per client: `specs[i]`
    /// drives client `i` with its own seed, RNG, drop/dup/reorder rates,
    /// crash points (keyed on that client's upload attempts), and
    /// disconnect windows. This is the multi-writer topology: two or
    /// more concurrent faulty writers whose decision streams never
    /// perturb each other.
    ///
    /// Each courier keeps the per-client seeding rule of
    /// [`SyncHub::enable_faults`] — client `i`'s jitter stream is
    /// re-seeded from *its own* `specs[i].seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `specs` has exactly one spec per attached client.
    pub fn enable_fault_topology(&mut self, specs: Vec<FaultSpec>) {
        assert_eq!(
            specs.len(),
            self.slots.len(),
            "one FaultSpec per attached client"
        );
        let hist = self
            .obs
            .registry
            .histogram("retry_backoff_ms", BACKOFF_HELP, &BACKOFF_BUCKETS_MS);
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            slot.courier = Courier::new(RetryPolicy::default(), courier_seed(specs[idx].seed, idx));
            slot.courier.set_backoff_histogram(hist.clone());
        }
        self.fault = Some(FaultTopology::per_client(specs));
        persist::save(&self.server, &mut self.store).expect("MemStore save cannot fail");
    }

    /// What the fault schedules have injected so far, summed over every
    /// plan (`None` until fault injection is armed).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(FaultTopology::stats)
    }

    /// The seed reproducing the current fault schedule (the first
    /// plan's seed under a per-client topology — see
    /// [`SyncHub::fault_seeds`] for all of them).
    pub fn fault_seed(&self) -> Option<u64> {
        self.fault.as_ref().map(|t| t.seeds()[0])
    }

    /// Every plan's seed, in client order (one entry when shared).
    pub fn fault_seeds(&self) -> Option<Vec<u64>> {
        self.fault.as_ref().map(FaultTopology::seeds)
    }

    /// Duplicated group copies currently held back for late redelivery.
    /// Always zero after a [`SyncHub::pump`] returns — the pump drains
    /// the defer queue at the end of every round.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Every `(client, path, version)` the server acknowledged.
    pub fn acked(&self) -> &[(usize, String, Version)] {
        &self.acked
    }

    /// Retransmissions client `idx`'s courier performed.
    pub fn retries(&self, idx: usize) -> u64 {
        self.slots[idx].courier.retries()
    }

    /// Groups client `idx` abandoned after exhausting its retry budget.
    pub fn given_up(&self, idx: usize) -> usize {
        self.slots[idx].courier.given_up().len()
    }

    /// Traffic counters of client `idx`'s link.
    pub fn traffic(&self, idx: usize) -> deltacfs_net::TrafficStats {
        self.slots[idx].link.stats()
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.slots.len()
    }

    /// The file system of client `idx` — the application performs its
    /// operations here.
    pub fn fs_mut(&mut self, idx: usize) -> &mut Vfs {
        &mut self.slots[idx].fs
    }

    /// Read access to client `idx`'s file system.
    pub fn fs(&self, idx: usize) -> &Vfs {
        &self.slots[idx].fs
    }

    /// The engine of client `idx`.
    pub fn client(&self, idx: usize) -> &DeltaCfsClient {
        &self.slots[idx].client
    }

    /// The shared cloud server.
    pub fn server(&self) -> &CloudServer {
        &self.server
    }

    /// Conflicts observed on clients: `(client index, conflict)`.
    pub fn conflicts(&self) -> &[(usize, RemoteConflict)] {
        &self.conflicts
    }

    /// Outcomes of server-side applications (to observe cloud conflicts).
    pub fn server_outcomes(&self) -> &[ApplyOutcome] {
        &self.server_outcomes
    }

    /// Pushes the cloud's entire current state to client `idx` — the
    /// initial sync a device performs when it joins an already-populated
    /// shared folder.
    pub fn full_sync(&mut self, idx: usize) {
        let now = self.clock.now();
        let mut msgs: Vec<UpdateMsg> = Vec::new();
        for dir in self.server.dirs() {
            msgs.push(UpdateMsg {
                path: dir,
                base: None,
                version: None,
                payload: UpdatePayload::Mkdir,
                txn: None,
                group: None,
            });
        }
        for path in self.server.paths() {
            let content = self.server.file(&path).expect("listed path exists");
            msgs.push(UpdateMsg {
                path: path.clone(),
                base: None,
                version: self.server.version(&path),
                payload: UpdatePayload::Full(Payload::copy_from_slice(content)),
                txn: None,
                group: None,
            });
        }
        for msg in msgs {
            let wire = msg.wire_size();
            self.slots[idx].link.download(wire, now);
            let slot = &mut self.slots[idx];
            slot.client.apply_remote(&msg, &mut slot.fs);
        }
    }

    /// Drains client events, uploads ready nodes, applies them on the
    /// cloud, and forwards applied updates to the other clients.
    pub fn pump(&mut self) {
        self.pump_inner(false);
    }

    /// Flushes everything regardless of upload delays.
    pub fn flush(&mut self) {
        self.pump_inner(true);
        // A second round delivers updates that forwarding produced.
        self.pump_inner(true);
    }

    fn pump_inner(&mut self, flush: bool) {
        let now = self.clock.now();
        for idx in 0..self.slots.len() {
            // 1. Feed pending fs events into the engine.
            let events = self.slots[idx].fs.drain_events();
            for e in &events {
                let slot = &mut self.slots[idx];
                slot.client.handle_event(e, &slot.fs);
            }
            // 2. Upload ready groups.
            let slot = &mut self.slots[idx];
            let groups = if flush {
                slot.client.flush(&slot.fs)
            } else {
                slot.client.tick(&slot.fs)
            };
            if self.fault.is_some() {
                for group in groups {
                    self.slots[idx].courier.enqueue(group);
                }
                self.drive_courier(idx, now);
            } else {
                for group in groups {
                    let wire: u64 = group.iter().map(UpdateMsg::wire_size).sum();
                    self.obs
                        .tracer
                        .event(now.as_millis(), &actor_name(idx), "wire.upload", || {
                            format!("group of {} msgs, {wire} wire bytes", group.len())
                        });
                    self.slots[idx].link.upload(wire, now);
                    let outcomes = self.server.apply_txn(&group);
                    let all_applied = outcomes.iter().all(|o| *o == ApplyOutcome::Applied);
                    self.obs
                        .tracer
                        .event(now.as_millis(), "server", "server.apply", || {
                            format!(
                                "group from {}: {} msgs, all_applied={all_applied}",
                                actor_name(idx),
                                group.len()
                            )
                        });
                    self.server_outcomes.extend(outcomes);
                    self.slots[idx].link.download(32, now);
                    if all_applied {
                        self.forward(idx, &group, now, &mut None);
                    }
                }
            }
        }
        // Late (reordered) duplicate copies arrive now, after *every*
        // courier ran this round — a deterministic, FIFO redelivery
        // window that can straddle writers. The `<CliID, GroupSeq>`
        // replay index must absorb each copy, versioned or not.
        for group in std::mem::take(&mut self.deferred) {
            self.obs
                .tracer
                .event(now.as_millis(), "server", "server.dedup", || {
                    format!(
                        "late duplicate redelivered: {} msgs on {}",
                        group.len(),
                        group.first().map(|m| m.path.as_str()).unwrap_or("?")
                    )
                });
            self.server.apply_txn_idempotent(&group);
        }
    }

    /// Runs client `idx`'s courier until its queue drains or backoff /
    /// disconnection parks it: each attempt goes through the client's
    /// fault plan, and only a surviving acknowledgement advances the
    /// queue.
    fn drive_courier(&mut self, idx: usize, now: deltacfs_net::SimTime) {
        let mut topo = self.fault.take().expect("fault mode is armed");
        while self.slots[idx].courier.ready(now) {
            let Some(flight) = self.slots[idx].courier.take_attempt(now) else {
                break;
            };
            let attempt = flight.attempts;
            let group = flight.group.clone();
            let wire: u64 = group.iter().map(UpdateMsg::wire_size).sum();
            let actor = actor_name(idx);
            let now_ms = now.as_millis();
            self.obs.tracer.event(now_ms, &actor, "wire.upload", || {
                format!(
                    "group of {} msgs, {wire} wire bytes, attempt {attempt}",
                    group.len()
                )
            });
            let (_, verdict) =
                self.slots[idx]
                    .link
                    .upload_faulty(wire, now, idx, topo.plan_for(idx));
            match verdict {
                UploadVerdict::Disconnected => {
                    // The reconnection time is known: park until then.
                    let until = topo
                        .plan_for(idx)
                        .disconnect_until(idx, now)
                        .unwrap_or(now.plus_millis(1));
                    self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                        format!("disconnected; courier parked until {}ms", until.as_millis())
                    });
                    self.slots[idx].courier.defer_until(until);
                    break;
                }
                UploadVerdict::Dropped => {
                    self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                        "upload dropped on the wire".to_string()
                    });
                    let delay = self.slots[idx].courier.on_failure(now);
                    self.trace_backoff(idx, now_ms, delay);
                }
                UploadVerdict::CrashBeforeApply => {
                    // The group dies with the server's volatile state; the
                    // restarted server comes back from its last snapshot
                    // and the client retries into it.
                    self.obs.tracer.event(now_ms, "server", "fault.inject", || {
                        "server crash before apply; restored from snapshot".to_string()
                    });
                    self.server = persist::load(&mut self.store).expect("snapshot loads");
                    let delay = self.slots[idx].courier.on_failure(now);
                    self.trace_backoff(idx, now_ms, delay);
                }
                UploadVerdict::Delivered {
                    duplicate,
                    crash_after_apply,
                } => {
                    let (outcomes, was_dup) = self.server.apply_txn_idempotent(&group);
                    let stage = if was_dup { "server.dedup" } else { "server.apply" };
                    self.obs.tracer.event(now_ms, "server", stage, || {
                        if was_dup {
                            format!("replay of group from {actor} absorbed ({} msgs)", group.len())
                        } else {
                            format!("group from {actor} applied ({} msgs)", group.len())
                        }
                    });
                    persist::save(&self.server, &mut self.store).expect("MemStore save");
                    if duplicate {
                        // Every duplicated copy — versioned or namespace-
                        // only — may be held back and redelivered after
                        // newer groups: the `<CliID, GroupSeq>` replay
                        // index recognizes it whenever it shows up.
                        let deferred = topo.plan_for(idx).defer_duplicate();
                        self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                            if deferred {
                                "upload duplicated; copy held for late redelivery".to_string()
                            } else {
                                "upload duplicated; copy redelivered immediately".to_string()
                            }
                        });
                        if deferred {
                            self.deferred.push(group.clone());
                        } else {
                            self.server.apply_txn_idempotent(&group);
                        }
                    }
                    if crash_after_apply {
                        // Applied and persisted, but the ack died with the
                        // server: the retry must hit the rebuilt
                        // idempotency index of the restarted server.
                        self.obs.tracer.event(now_ms, "server", "fault.inject", || {
                            "server crash after apply; ack lost with it".to_string()
                        });
                        self.server = persist::load(&mut self.store).expect("snapshot loads");
                        let delay = self.slots[idx].courier.on_failure(now);
                        self.trace_backoff(idx, now_ms, delay);
                    } else if self.slots[idx]
                        .link
                        .download_faulty(32, now, idx, topo.plan_for(idx))
                        .is_some()
                    {
                        self.obs.tracer.event(now_ms, &actor, "wire.ack", || {
                            format!("group acknowledged after {} attempt(s)", attempt)
                        });
                        self.slots[idx].courier.on_ack();
                        if !was_dup {
                            let all_applied =
                                outcomes.iter().all(|o| *o == ApplyOutcome::Applied);
                            for (msg, out) in group.iter().zip(&outcomes) {
                                if *out == ApplyOutcome::Applied {
                                    if let Some(v) = msg.version {
                                        self.acked.push((idx, msg.path.clone(), v));
                                    }
                                }
                            }
                            self.server_outcomes.extend(outcomes);
                            if all_applied {
                                self.forward(idx, &group, now, &mut Some(&mut topo));
                            }
                        }
                    } else {
                        // Ack lost: the client cannot tell this from a
                        // dropped upload and retransmits.
                        self.obs.tracer.event(now_ms, &actor, "fault.inject", || {
                            "ack lost on the downlink".to_string()
                        });
                        let delay = self.slots[idx].courier.on_failure(now);
                        self.trace_backoff(idx, now_ms, delay);
                    }
                }
            }
        }
        self.fault = Some(topo);
    }

    /// Records the courier's retransmission decision in the trace.
    fn trace_backoff(&self, idx: usize, now_ms: u64, delay: Option<u64>) {
        self.obs
            .tracer
            .event(now_ms, &actor_name(idx), "retry.backoff", || match delay {
                Some(d) => format!("retransmission armed in {d}ms"),
                None => "retry budget exhausted: group parked".to_string(),
            });
    }

    /// Sends `group` to every client except `from` — the same incremental
    /// data, no recomputation (paper §III-D). In fault mode each
    /// forwarded message can be lost on the *receiving peer's* downlink,
    /// as decided by that peer's own fault plan.
    fn forward(
        &mut self,
        from: usize,
        group: &[UpdateMsg],
        now: deltacfs_net::SimTime,
        fault: &mut Option<&mut FaultTopology>,
    ) {
        for idx in 0..self.slots.len() {
            if idx == from {
                continue;
            }
            self.obs
                .tracer
                .event(now.as_millis(), "server", "wire.forward", || {
                    format!(
                        "forwarding group of {} msgs from {} to {}",
                        group.len(),
                        actor_name(from),
                        actor_name(idx)
                    )
                });
            for msg in group {
                // The paper's key multi-client property (§III-D): "the
                // same incremental data can be directly sent to client B
                // without additional computation". A delta is forwarded
                // verbatim when the peer's base matches (it applies it to
                // its own copy of the base path); only a diverged peer —
                // e.g. one holding unsynced local edits, which is about to
                // conflict anyway — receives the materialized content.
                let peer_diverged = match &msg.payload {
                    UpdatePayload::Delta { base_path, .. } => {
                        let slot = &self.slots[idx];
                        let local_version = slot.client.version_of(base_path);
                        local_version != msg.base
                    }
                    // An ops batch assumes the peer holds the base the
                    // uploader built on. A peer that missed an earlier
                    // forward (lost downlink) would silently apply the
                    // ops to stale content — materialize instead, which
                    // also heals the earlier gap.
                    UpdatePayload::Ops(_) => {
                        let slot = &self.slots[idx];
                        slot.client.version_of(&msg.path) != msg.base
                    }
                    _ => false,
                };
                let forwarded = if peer_diverged {
                    let content = self
                        .server
                        .file(&msg.path)
                        .map(Payload::copy_from_slice)
                        .unwrap_or_default();
                    UpdateMsg {
                        payload: UpdatePayload::Full(content),
                        ..msg.clone()
                    }
                } else {
                    msg.clone()
                };
                let wire = forwarded.wire_size();
                let arrived = match fault.as_mut() {
                    Some(topo) => self.slots[idx]
                        .link
                        .download_faulty(wire, now, idx, topo.plan_for(idx))
                        .is_some(),
                    None => {
                        self.slots[idx].link.download(wire, now);
                        true
                    }
                };
                if !arrived {
                    // A lost forward leaves the peer behind; the next
                    // forward's divergence check (or a settle pass)
                    // re-materializes the content.
                    continue;
                }
                let slot = &mut self.slots[idx];
                if let Some(conflict) = slot.client.apply_remote(&forwarded, &mut slot.fs) {
                    self.conflicts.push((idx, conflict));
                }
            }
        }
    }

    /// Pumps and advances the clock until every courier drains (or
    /// `max_ms` of simulated time passes), then runs one anti-entropy
    /// pass that reconciles every client with the server — healing gaps
    /// left by forwarded updates that were lost on peer downlinks.
    ///
    /// Returns `true` when all couriers drained without giving up.
    pub fn settle(&mut self, max_ms: u64) -> bool {
        let start = self.clock.now();
        loop {
            self.pump_inner(true);
            let idle = self.slots.iter().all(|s| s.courier.is_idle());
            if idle || self.clock.now().since(start) > max_ms {
                break;
            }
            self.clock.advance(250);
        }
        let drained = self.slots.iter().all(|s| s.courier.is_idle())
            && self.slots.iter().all(|s| s.courier.given_up().is_empty());

        // Anti-entropy: the server's state is authoritative; push every
        // divergence down as full content (local conflict copies are
        // per-client artifacts and stay put).
        let now = self.clock.now();
        for idx in 0..self.slots.len() {
            for path in self.server.paths() {
                let server_content = self
                    .server
                    .file(&path)
                    .map(<[u8]>::to_vec)
                    .expect("listed path exists");
                let local = self.slots[idx].fs.peek_all(&path).ok();
                if local.as_deref() == Some(&server_content[..]) {
                    continue;
                }
                let msg = UpdateMsg {
                    path: path.clone(),
                    base: None,
                    version: self.server.version(&path),
                    payload: UpdatePayload::Full(Payload::from(server_content)),
                    txn: None,
                    group: None,
                };
                self.slots[idx].link.download(msg.wire_size(), now);
                let slot = &mut self.slots[idx];
                if let Some(conflict) = slot.client.apply_remote(&msg, &mut slot.fs) {
                    self.conflicts.push((idx, conflict));
                }
            }
            // Files the server does not have (e.g. an unlink whose
            // forward was lost) disappear locally too.
            let local_paths = self.slots[idx].fs.walk_files("/").unwrap_or_default();
            for path in local_paths {
                let path = path.to_string();
                if self.server.file(&path).is_none() && !path.contains(".conflict-") {
                    let msg = UpdateMsg {
                        path,
                        base: None,
                        version: None,
                        payload: UpdatePayload::Unlink,
                        txn: None,
                        group: None,
                    };
                    let slot = &mut self.slots[idx];
                    slot.client.apply_remote(&msg, &mut slot.fs);
                }
            }
        }
        drained
    }

    /// Absorbs every component's counters into the registry and returns
    /// a frozen, name-sorted snapshot (export via
    /// [`Snapshot::to_json`] / [`Snapshot::to_prometheus`]):
    ///
    /// * per-client link traffic (`traffic_*`), VFS IO (`io_*`), and
    ///   delta-engine cost (`delta_cost_*`), each labeled
    ///   `client="<n>"`, plus courier retry counters;
    /// * server-side apply cost (`server_cost_*`) and the idempotency
    ///   index's `server_duplicates_ignored`;
    /// * when fault injection is armed, the per-kind `fault_*` injection
    ///   counters and their `fault_injections_fired` total;
    /// * the `retry_backoff_ms` histogram and anything else components
    ///   recorded into the shared registry along the way.
    pub fn export_metrics(&self) -> Snapshot {
        let reg = &self.obs.registry;
        let mut queued = 0;
        for (idx, slot) in self.slots.iter().enumerate() {
            let id = format!("{}", idx + 1);
            let label = Some(("client", id.as_str()));
            slot.link.stats().export_counters(reg, "traffic", label);
            slot.fs.stats().export_counters(reg, "io", label);
            slot.client.cost().export_counters(reg, "delta_cost", label);
            reg.counter_labeled(
                "retry_retransmissions",
                "retransmissions the courier performed",
                label,
            )
            .set(slot.courier.retries());
            reg.counter_labeled(
                "retry_groups_given_up",
                "groups parked after exhausting the retry budget",
                label,
            )
            .set(slot.courier.given_up().len() as u64);
            queued += slot.client.queued_nodes() as i64;
        }
        reg.gauge("sync_queue_depth", "nodes waiting in sync queues")
            .set(queued);
        self.server.cost().export_counters(reg, "server_cost", None);
        reg.counter(
            "server_duplicates_ignored",
            "uploads the idempotency index absorbed",
        )
        .set(self.server.duplicates_ignored());
        if let Some(stats) = self.fault_stats() {
            stats.export_counters(reg, "fault", None);
            reg.counter(
                "fault_injections_fired",
                "fault injections that actually fired",
            )
            .set(stats.total_fired());
        }
        reg.snapshot()
    }

    /// Simulates a crash of client `idx`: the volatile sync queue and
    /// in-flight retransmissions are lost, then the client rebuilds its
    /// upload state from the durable undo log
    /// (see [`DeltaCfsClient::restart_from_undo_log`]).
    ///
    /// Returns the paths the restarted client re-queued.
    pub fn crash_and_restart_client(&mut self, idx: usize) -> Vec<String> {
        // Interception is synchronous: operations that completed before
        // the crash already reached the engine (and its undo logs).
        let events = self.slots[idx].fs.drain_events();
        for e in &events {
            let slot = &mut self.slots[idx];
            slot.client.handle_event(e, &slot.fs);
        }
        self.slots[idx].courier.clear();
        let server = &self.server;
        let slot = &mut self.slots[idx];
        slot.client
            .restart_from_undo_log(&slot.fs, |p| server.version(p))
    }
}

/// Mixes the fault seed and the slot index into one courier seed.
fn courier_seed(fault_seed: u64, idx: usize) -> u64 {
    fault_seed ^ (idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Trace actor name of the client in slot `idx` — matches the engine's
/// own `client-<CliID>` naming.
fn actor_name(idx: usize) -> String {
    format!("client-{}", idx + 1)
}

const BACKOFF_HELP: &str = "courier retransmission backoff delays (ms)";

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_with_two_clients() -> (SyncHub, SimClock) {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        (hub, clock)
    }

    #[test]
    fn update_propagates_to_peer() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/shared.txt").unwrap();
        hub.fs_mut(0)
            .write("/shared.txt", 0, b"from client 0")
            .unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert_eq!(
            hub.server().file("/shared.txt"),
            Some(&b"from client 0"[..])
        );
        assert_eq!(hub.fs(1).peek_all("/shared.txt").unwrap(), b"from client 0");
        assert!(hub.conflicts().is_empty());
    }

    #[test]
    fn incremental_edit_propagates() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/f").unwrap();
        hub.fs_mut(0).write("/f", 0, b"0123456789").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.fs_mut(0).write("/f", 2, b"XY").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert_eq!(hub.fs(1).peek_all("/f").unwrap(), b"01XY456789");
    }

    #[test]
    fn concurrent_edit_conflicts_first_write_wins() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, b"base").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
                    // Both clients edit concurrently.
        hub.fs_mut(0).write("/doc", 0, b"AAAA").unwrap();
        hub.fs_mut(1).write("/doc", 0, b"BBBB").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.flush();
        // Client 0 pumped first: its version is the cloud's latest.
        assert_eq!(hub.server().file("/doc"), Some(&b"AAAA"[..]));
        // Client 1's edit survived somewhere (conflict copy on cloud or
        // local conflict file).
        let cloud_conflict = hub.server().paths().iter().any(|p| p.contains(".conflict"));
        let local_conflict = !hub.conflicts().is_empty();
        assert!(cloud_conflict || local_conflict);
    }

    #[test]
    fn three_clients_all_converge() {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        for _ in 0..3 {
            hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        }
        hub.fs_mut(2).create("/from2").unwrap();
        hub.fs_mut(2).write("/from2", 0, b"hello all").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        for idx in 0..3 {
            assert_eq!(
                hub.fs(idx).peek_all("/from2").unwrap(),
                b"hello all",
                "client {idx}"
            );
        }
    }

    #[test]
    fn deltas_forward_as_deltas_not_full_content() {
        // §III-D: the peer receives the same incremental data the cloud
        // did — a transactional save of a 100 KB file must not push
        // 100 KB to the peer.
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/doc").unwrap();
        hub.fs_mut(0).write("/doc", 0, &vec![4u8; 100_000]).unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        let peer_down_before = {
            // Reach through the slot's link stats via the report of a
            // fresh pump: measure through fs state instead.
            hub.slots[1].link.stats().bytes_down
        };
        // Word-style save on client 0, one byte changed.
        let mut doc = hub.fs(0).peek_all("/doc").unwrap();
        doc[50_000] = 5;
        hub.fs_mut(0).rename("/doc", "/doc.bak").unwrap();
        hub.pump();
        hub.fs_mut(0).create("/doc.tmp").unwrap();
        hub.pump();
        hub.fs_mut(0).write("/doc.tmp", 0, &doc).unwrap();
        hub.pump();
        hub.fs_mut(0).close_path("/doc.tmp").unwrap();
        hub.pump();
        hub.fs_mut(0).rename("/doc.tmp", "/doc").unwrap();
        hub.pump();
        hub.fs_mut(0).unlink("/doc.bak").unwrap();
        hub.pump();
        clock.advance(4000);
        hub.pump();
        hub.flush();
        // The peer converged...
        assert_eq!(hub.fs(1).peek_all("/doc").unwrap(), doc);
        // ...from an incremental download, not a re-materialized file.
        let peer_down = hub.slots[1].link.stats().bytes_down - peer_down_before;
        assert!(
            peer_down < 20_000,
            "peer downloaded {peer_down} bytes for a 1-byte edit"
        );
    }

    #[test]
    fn late_joining_device_catches_up_via_full_sync() {
        let clock = SimClock::new();
        let mut hub = SyncHub::new(clock.clone());
        let first = hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
        hub.fs_mut(first).mkdir_all("/photos").unwrap();
        hub.fs_mut(first).create("/photos/cat.jpg").unwrap();
        hub.fs_mut(first)
            .write("/photos/cat.jpg", 0, &vec![9u8; 10_000])
            .unwrap();
        hub.pump();
        clock.advance(4_000);
        hub.pump();

        // A new phone joins later and performs the initial sync.
        let phone = hub.add_client(DeltaCfsConfig::new(), LinkSpec::mobile());
        hub.full_sync(phone);
        assert_eq!(
            hub.fs(phone).peek_all("/photos/cat.jpg").unwrap(),
            vec![9u8; 10_000]
        );
        // And from then on participates in incremental sync.
        hub.fs_mut(first)
            .write("/photos/cat.jpg", 0, b"update")
            .unwrap();
        hub.pump();
        clock.advance(4_000);
        hub.pump();
        assert_eq!(
            &hub.fs(phone).peek_all("/photos/cat.jpg").unwrap()[..6],
            b"update"
        );
    }

    #[test]
    fn rename_propagates() {
        let (mut hub, clock) = hub_with_two_clients();
        hub.fs_mut(0).create("/old").unwrap();
        hub.fs_mut(0).write("/old", 0, b"x").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        hub.fs_mut(0).rename("/old", "/new").unwrap();
        hub.pump(); // ingest events
        clock.advance(4000);
        hub.pump(); // upload aged nodes
        assert!(hub.fs(1).exists("/new"));
        assert!(!hub.fs(1).exists("/old"));
    }
}
