//! A threaded cloud endpoint: the [`CloudServer`] running on its own
//! thread, receiving transaction groups over a channel.
//!
//! The in-process evaluation drives the server synchronously, but the
//! paper's deployment has clients and the cloud on different machines.
//! This module provides the concurrency seam: any number of client
//! threads hold cheap [`CloudHandle`] clones and submit transaction
//! groups; the server thread applies them in arrival order, preserving
//! each connection's FIFO (crossbeam's channels are MPSC-ordered per
//! sender), which is the property the sync queue's causality guarantees
//! rely on.

use crossbeam::channel::{bounded, unbounded, Sender};
use std::thread::JoinHandle;

use crate::protocol::{ApplyOutcome, UpdateMsg};
use crate::server::CloudServer;

enum Command {
    Apply {
        group: Vec<UpdateMsg>,
        reply: Sender<Vec<ApplyOutcome>>,
    },
    Query {
        path: String,
        reply: Sender<Option<Vec<u8>>>,
    },
    Shutdown {
        reply: Sender<CloudServer>,
    },
}

/// A cheaply clonable handle to a cloud server running on another thread.
#[derive(Clone)]
pub struct CloudHandle {
    tx: Sender<Command>,
}

impl std::fmt::Debug for CloudHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudHandle").finish_non_exhaustive()
    }
}

/// Errors from talking to a threaded cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloudGone;

impl std::fmt::Display for CloudGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cloud server thread has shut down")
    }
}

impl std::error::Error for CloudGone {}

impl CloudHandle {
    /// Applies a transaction group atomically and waits for the outcomes.
    ///
    /// # Errors
    ///
    /// [`CloudGone`] if the server thread has terminated.
    pub fn apply_txn(&self, group: Vec<UpdateMsg>) -> Result<Vec<ApplyOutcome>, CloudGone> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Command::Apply { group, reply })
            .map_err(|_| CloudGone)?;
        rx.recv().map_err(|_| CloudGone)
    }

    /// Fetches the current content of `path`.
    ///
    /// # Errors
    ///
    /// [`CloudGone`] if the server thread has terminated.
    pub fn file(&self, path: &str) -> Result<Option<Vec<u8>>, CloudGone> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Command::Query {
                path: path.to_string(),
                reply,
            })
            .map_err(|_| CloudGone)?;
        rx.recv().map_err(|_| CloudGone)
    }

    /// Shuts the server down and returns its final state.
    ///
    /// # Errors
    ///
    /// [`CloudGone`] if the server thread already terminated.
    pub fn shutdown(self) -> Result<CloudServer, CloudGone> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Command::Shutdown { reply })
            .map_err(|_| CloudGone)?;
        rx.recv().map_err(|_| CloudGone)
    }
}

/// Spawns a [`CloudServer`] on a fresh thread.
///
/// The returned [`JoinHandle`] completes once every [`CloudHandle`] clone
/// has been dropped or [`CloudHandle::shutdown`] was called.
pub fn spawn_cloud() -> (CloudHandle, JoinHandle<()>) {
    let (tx, rx) = unbounded::<Command>();
    let join = std::thread::spawn(move || {
        let mut server = CloudServer::new();
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Apply { group, reply } => {
                    let outcomes = server.apply_txn(&group);
                    let _ = reply.send(outcomes);
                }
                Command::Query { path, reply } => {
                    let _ = reply.send(server.file(&path).map(<[u8]>::to_vec));
                }
                Command::Shutdown { reply } => {
                    let _ = reply.send(server);
                    return;
                }
            }
        }
    });
    (CloudHandle { tx }, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DeltaCfsClient;
    use crate::config::DeltaCfsConfig;
    use crate::protocol::ClientId;
    use deltacfs_net::SimClock;
    use deltacfs_vfs::Vfs;

    #[test]
    fn apply_and_query_across_the_thread() {
        let (cloud, join) = spawn_cloud();
        let clock = SimClock::new();
        let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/t").unwrap();
        fs.write("/t", 0, b"threaded").unwrap();
        for e in fs.drain_events() {
            client.handle_event(&e, &fs);
        }
        clock.advance(4_000);
        for group in client.tick(&fs) {
            let outcomes = cloud.apply_txn(group).unwrap();
            assert!(outcomes.iter().all(|o| *o == ApplyOutcome::Applied));
        }
        assert_eq!(cloud.file("/t").unwrap().as_deref(), Some(&b"threaded"[..]));
        let server = cloud.shutdown().unwrap();
        join.join().unwrap();
        assert_eq!(server.file("/t"), Some(&b"threaded"[..]));
    }

    #[test]
    fn multiple_client_threads_upload_concurrently() {
        let (cloud, join) = spawn_cloud();
        let mut workers = Vec::new();
        for id in 0..4u32 {
            let cloud = cloud.clone();
            workers.push(std::thread::spawn(move || {
                let clock = SimClock::new();
                let mut client =
                    DeltaCfsClient::new(ClientId(id + 1), DeltaCfsConfig::new(), clock.clone());
                let mut fs = Vfs::new();
                fs.enable_event_log();
                let path = format!("/client{id}");
                fs.create(&path).unwrap();
                fs.write(&path, 0, format!("data from {id}").as_bytes())
                    .unwrap();
                for e in fs.drain_events() {
                    client.handle_event(&e, &fs);
                }
                clock.advance(4_000);
                for group in client.tick(&fs) {
                    cloud.apply_txn(group).unwrap();
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        for id in 0..4u32 {
            let content = cloud.file(&format!("/client{id}")).unwrap().unwrap();
            assert_eq!(content, format!("data from {id}").into_bytes());
        }
        cloud.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn dropping_all_handles_ends_the_thread() {
        let (cloud, join) = spawn_cloud();
        drop(cloud);
        join.join().unwrap();
    }

    #[test]
    fn calls_after_shutdown_report_gone() {
        let (cloud, join) = spawn_cloud();
        let second = cloud.clone();
        cloud.shutdown().unwrap();
        join.join().unwrap();
        assert_eq!(second.file("/x"), Err(CloudGone));
    }
}
