//! The DeltaCFS cloud server (paper §III-C/D and the future-work note:
//! "the load of the server side is minimized, servers simply apply
//! incremental data on files").
//!
//! The server keeps, per file, the current content, its version, and a
//! bounded history of recent versions. Applying an update checks the
//! attached base version against the current one; on mismatch, the
//! "first write wins" rule keeps the current content as the latest
//! version and materializes the loser as a conflict copy — built from the
//! *incremental* data applied against the matching historical version, so
//! nothing needs to be re-uploaded (§III-C).

use std::collections::{BTreeSet, HashMap, VecDeque};

use bytes::Bytes;
use deltacfs_delta::Cost;

use crate::pipeline::{ChunkFrame, ChunkStager};
use crate::protocol::{ApplyOutcome, GroupId, UpdateMsg, UpdatePayload, Version};
use crate::wire::WireError;

/// How many past versions the server retains per file.
const DEFAULT_HISTORY: usize = 8;

#[derive(Debug, Clone)]
pub(crate) struct ServerFile {
    content: Bytes,
    version: Option<Version>,
    history: VecDeque<(Version, Bytes)>,
}

impl ServerFile {
    fn new() -> Self {
        ServerFile {
            content: Bytes::new(),
            version: None,
            history: VecDeque::new(),
        }
    }
}

/// The cloud endpoint: versioned file storage that applies incremental
/// updates.
///
/// # Example
///
/// ```
/// use deltacfs_core::{ClientId, CloudServer, Payload, UpdateMsg, UpdatePayload, Version};
///
/// let mut cloud = CloudServer::new();
/// let v1 = Version { client: ClientId(1), counter: 1 };
/// cloud.apply_msg(&UpdateMsg {
///     path: "/f".into(),
///     base: None,
///     version: Some(v1),
///     payload: UpdatePayload::Full(Payload::from_static(b"v1")),
///     txn: None,
///     group: None,
/// });
/// assert_eq!(cloud.file("/f"), Some(&b"v1"[..]));
/// assert_eq!(cloud.version_history("/f"), vec![v1]);
/// ```
#[derive(Debug)]
pub struct CloudServer {
    files: HashMap<String, ServerFile>,
    dirs: BTreeSet<String>,
    cost: Cost,
    history_limit: usize,
    apply_order: Vec<String>,
    /// Idempotency memory: the outcome recorded for every versioned
    /// message already applied, keyed by its `<CliID, VerCnt>` version.
    /// Retransmitted groups replay their outcomes from here instead of
    /// being applied twice.
    seen: HashMap<Version, ApplyOutcome>,
    /// Whole-group idempotency memory keyed by `<CliID, GroupSeq>`: the
    /// full outcome vector of every stamped group, recorded in one insert
    /// so a replay is always all-or-nothing. This is what makes
    /// version-less groups (pure renames/mkdirs) dedupable — their
    /// members carry no file version for `seen` to key on.
    group_seen: HashMap<GroupId, Vec<ApplyOutcome>>,
    duplicate_groups: u64,
    /// In-progress streamed group uploads, keyed by group id. Nothing
    /// in a stage is visible to reads or applied until the group's
    /// final chunk commits it atomically.
    stager: ChunkStager,
}

impl Default for CloudServer {
    fn default() -> Self {
        Self::new()
    }
}

impl CloudServer {
    /// Creates an empty cloud store.
    pub fn new() -> Self {
        CloudServer {
            files: HashMap::new(),
            dirs: BTreeSet::new(),
            cost: Cost::new(),
            history_limit: DEFAULT_HISTORY,
            apply_order: Vec::new(),
            seen: HashMap::new(),
            group_seen: HashMap::new(),
            duplicate_groups: 0,
            stager: ChunkStager::new(),
        }
    }

    /// Work the server has performed so far.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Resets the server's work counters.
    pub fn reset_cost(&mut self) {
        self.cost = Cost::new();
    }

    /// Current content of `path`, if present.
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|f| &f.content[..])
    }

    /// Current version of `path`, if present.
    pub fn version(&self, path: &str) -> Option<Version> {
        self.files.get(path).and_then(|f| f.version)
    }

    /// Whether the directory `path` exists.
    pub fn has_dir(&self, path: &str) -> bool {
        self.dirs.contains(path)
    }

    /// All stored directory paths, sorted.
    pub fn dirs(&self) -> Vec<String> {
        self.dirs.iter().cloned().collect()
    }

    /// All stored file paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total bytes stored (current versions only).
    pub fn stored_bytes(&self) -> u64 {
        self.files.values().map(|f| f.content.len() as u64).sum()
    }

    /// The order in which file updates were applied — the causal-ordering
    /// probe used by the Table IV reliability test.
    pub fn apply_order(&self) -> &[String] {
        &self.apply_order
    }

    /// The retained versions of `path`, oldest first, ending with the
    /// current one. This is the fine-grained version control the sync
    /// queue's per-node versioning enables (§III-C): every uploaded node
    /// became one entry here.
    pub fn version_history(&self, path: &str) -> Vec<Version> {
        let Some(f) = self.files.get(path) else {
            return Vec::new();
        };
        let mut out: Vec<Version> = f.history.iter().map(|(v, _)| *v).collect();
        out.extend(f.version);
        out
    }

    /// Content of `path` at a specific retained version (the current
    /// version included).
    pub fn file_at(&self, path: &str, version: Version) -> Option<&[u8]> {
        let f = self.files.get(path)?;
        if f.version == Some(version) {
            return Some(&f.content);
        }
        f.history
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, c)| &c[..])
    }

    /// Restores `path` to a retained `version`, stamping the restored
    /// content as `new_version` (restores are themselves versioned, so
    /// they forward to clients like any other update). Returns `false`
    /// if the version is no longer retained.
    pub fn restore(&mut self, path: &str, version: Version, new_version: Version) -> bool {
        let Some(content) = self.file_at(path, version).map(Bytes::copy_from_slice) else {
            return false;
        };
        self.bump(path, content, Some(new_version));
        true
    }

    /// Resolves a conflict the way the paper describes ("let users
    /// resolve conflicts manually, for example picking the version they
    /// want"): promotes the conflict copy at `conflict_path` to be the
    /// new current version of `path` (stamped `new_version`), removing
    /// the copy. Returns `false` if the conflict copy does not exist.
    pub fn resolve_conflict_keep_copy(
        &mut self,
        path: &str,
        conflict_path: &str,
        new_version: Version,
    ) -> bool {
        let Some(copy) = self.files.get(conflict_path).map(|f| f.content.clone()) else {
            return false;
        };
        self.bump(path, copy, Some(new_version));
        self.files.remove(conflict_path);
        self.apply_order.push(path.to_string());
        true
    }

    /// Resolves a conflict by discarding the conflict copy (keeping the
    /// current version). Returns `false` if the copy does not exist.
    pub fn resolve_conflict_discard(&mut self, conflict_path: &str) -> bool {
        self.files.remove(conflict_path).is_some()
    }

    /// Validates a whole group *sequentially*: later members may depend
    /// on versions assigned by earlier members (e.g. a create followed by
    /// writes against the created version), so validation walks a virtual
    /// view of the namespace as the group would transform it.
    fn validate_group(&self, msgs: &[UpdateMsg]) -> bool {
        // Virtual state: path → Some(version) = present, None = absent.
        // Paths not in the map fall back to the real store.
        let mut virt: HashMap<String, Option<Option<Version>>> = HashMap::new();
        let state =
            |virt: &HashMap<String, Option<Option<Version>>>, path: &str| match virt.get(path) {
                Some(s) => *s,
                None => self.files.get(path).map(|f| f.version),
            };
        for msg in msgs {
            match &msg.payload {
                UpdatePayload::Create => {
                    if state(&virt, &msg.path).is_some() {
                        return false;
                    }
                    virt.insert(msg.path.clone(), Some(msg.version));
                }
                UpdatePayload::Ops(_) | UpdatePayload::Full(_) => {
                    let current = state(&virt, &msg.path).flatten();
                    if msg.base.is_some() && current != msg.base {
                        return false;
                    }
                    if msg.base.is_none() {
                        // New-to-cloud content: any existing version loses.
                        if let Some(existing) = state(&virt, &msg.path) {
                            if existing.is_some() {
                                return false;
                            }
                        }
                    }
                    virt.insert(msg.path.clone(), Some(msg.version));
                }
                UpdatePayload::Delta { base_path, .. } => {
                    match state(&virt, base_path) {
                        Some(current) if current == msg.base => {}
                        _ => return false,
                    }
                    virt.insert(msg.path.clone(), Some(msg.version));
                }
                UpdatePayload::Rename { to } => {
                    let src = state(&virt, &msg.path);
                    if src.is_none() {
                        return false;
                    }
                    virt.insert(msg.path.clone(), None);
                    virt.insert(to.clone(), src);
                }
                UpdatePayload::Link { to } => {
                    let src = state(&virt, &msg.path);
                    if src.is_none() {
                        return false;
                    }
                    virt.insert(to.clone(), src);
                }
                UpdatePayload::Unlink => {
                    virt.insert(msg.path.clone(), None);
                }
                UpdatePayload::Mkdir | UpdatePayload::Rmdir => {}
            }
        }
        true
    }

    /// Applies a single message.
    pub fn apply_msg(&mut self, msg: &UpdateMsg) -> ApplyOutcome {
        if self.validate_group(std::slice::from_ref(msg)) {
            self.apply_unchecked(msg);
            ApplyOutcome::Applied
        } else {
            self.apply_as_conflict(msg)
        }
    }

    /// Applies a transaction group atomically: if any member fails
    /// validation, *every* member is treated as a conflict (the paper
    /// labels all files of an atomic operation as conflicted and lets the
    /// user resolve them).
    pub fn apply_txn(&mut self, msgs: &[UpdateMsg]) -> Vec<ApplyOutcome> {
        if self.validate_group(msgs) {
            msgs.iter()
                .map(|m| {
                    self.apply_unchecked(m);
                    ApplyOutcome::Applied
                })
                .collect()
        } else {
            msgs.iter().map(|m| self.apply_as_conflict(m)).collect()
        }
    }

    /// Applies a transaction group with replay deduplication. A stamped
    /// group (every upload group is, see [`GroupId`]) is keyed by its
    /// `<CliID, GroupSeq>` in the whole-group index: on a hit, the
    /// recorded outcome vector — real outcomes for namespace ops included
    /// — is replayed verbatim and nothing is re-applied. Unstamped groups
    /// (legacy callers, synthetic messages) fall back to per-member
    /// `<CliID, VerCnt>` detection. Returns the outcomes plus whether the
    /// group was a duplicate.
    ///
    /// Retransmissions are whole-group (the retry layer resends the
    /// entire atomic group), so per-member partial duplication does not
    /// arise; the group record is likewise written in a single insert, so
    /// a crash can never leave a half-recorded group behind.
    pub fn apply_txn_idempotent(&mut self, msgs: &[UpdateMsg]) -> (Vec<ApplyOutcome>, bool) {
        let gid = msgs.iter().find_map(|m| m.group);
        if let Some(gid) = gid {
            if let Some(recorded) = self.group_seen.get(&gid) {
                self.duplicate_groups += 1;
                return (recorded.clone(), true);
            }
        }
        // Version fallback: a version can only be in `seen` if its group
        // was applied, so a hit is always a retransmission. This covers
        // unstamped groups entirely and stamped groups whose record is
        // absent (e.g. a snapshot written before group records existed).
        let duplicate = msgs
            .iter()
            .any(|m| m.version.is_some_and(|v| self.seen.contains_key(&v)));
        if duplicate {
            self.duplicate_groups += 1;
            let outcomes = msgs
                .iter()
                .map(|m| {
                    m.version
                        .and_then(|v| self.seen.get(&v).cloned())
                        .unwrap_or(ApplyOutcome::Applied)
                })
                .collect();
            return (outcomes, true);
        }
        let outcomes = self.apply_txn(msgs);
        for (msg, outcome) in msgs.iter().zip(&outcomes) {
            if let Some(v) = msg.version {
                self.seen.insert(v, outcome.clone());
            }
        }
        if let Some(gid) = gid {
            // One atomic insert for the whole group: there is never a
            // moment where only some members' outcomes are recorded.
            self.group_seen.insert(gid, outcomes.clone());
        }
        (outcomes, false)
    }

    /// Receives one frame of a streamed group upload.
    ///
    /// Staging goes through the shared [`ChunkStager`] (the same state
    /// machine clients use for forwarded groups); when the group's
    /// final frame lands the decoded messages commit atomically through
    /// [`apply_txn_idempotent`] — so a group whose stream is cut
    /// mid-way applies *nothing*, and the client's whole-group retry
    /// restarts cleanly: chunk `(0, 0)` always resets a stale stage for
    /// its group.
    ///
    /// Returns `Ok(Some(outcomes))` when the group commits, `Ok(None)`
    /// for an intermediate frame.
    ///
    /// # Errors
    ///
    /// An out-of-order or unknown frame (a prior chunk was lost) drops
    /// the stage and returns [`WireError::Malformed`]; staged bytes
    /// that fail to decode are reported likewise. Either way the group
    /// is untouched and a full resend recovers.
    ///
    /// [`apply_txn_idempotent`]: CloudServer::apply_txn_idempotent
    pub fn receive_chunk(
        &mut self,
        frame: &ChunkFrame,
    ) -> Result<Option<Vec<ApplyOutcome>>, WireError> {
        match self.stager.accept(frame)? {
            Some(msgs) => {
                let (outcomes, _duplicate) = self.apply_txn_idempotent(&msgs);
                Ok(Some(outcomes))
            }
            None => Ok(None),
        }
    }

    /// Whether a `<CliID, GroupSeq>` group has already been applied here.
    pub fn has_seen_group(&self, group: GroupId) -> bool {
        self.group_seen.contains_key(&group)
    }

    /// The recorded whole-group outcomes, for snapshotting.
    pub(crate) fn group_records(&self) -> impl Iterator<Item = (GroupId, &[ApplyOutcome])> {
        self.group_seen.iter().map(|(g, o)| (*g, &o[..]))
    }

    /// Restores one group's recorded outcomes (snapshot load path).
    pub(crate) fn restore_group_record(&mut self, group: GroupId, outcomes: Vec<ApplyOutcome>) {
        self.group_seen.insert(group, outcomes);
    }

    /// How many duplicate (retransmitted) groups were absorbed without
    /// re-applying.
    pub fn duplicates_ignored(&self) -> u64 {
        self.duplicate_groups
    }

    /// Whether a `<CliID, VerCnt>` version has already been applied (or
    /// conflicted) here.
    pub fn has_seen(&self, version: Version) -> bool {
        self.seen.contains_key(&version)
    }

    /// The outcome recorded for `version` in the per-version index, if
    /// any — the sharded dispatcher replays cross-shard retransmissions
    /// from here.
    pub(crate) fn seen_outcome(&self, version: Version) -> Option<ApplyOutcome> {
        self.seen.get(&version).cloned()
    }

    /// Records a `<CliID, VerCnt>` outcome in the per-version index
    /// (sharded dispatcher: a cross-shard group's members are indexed on
    /// the shard owning each member's path).
    pub(crate) fn record_seen(&mut self, version: Version, outcome: ApplyOutcome) {
        self.seen.insert(version, outcome);
    }

    /// The recorded outcome vector of one group, if present.
    pub(crate) fn group_record(&self, group: GroupId) -> Option<Vec<ApplyOutcome>> {
        self.group_seen.get(&group).cloned()
    }

    /// Removes and returns the whole stored entry for `path` — content,
    /// version, and retained history. Used by the sharded dispatcher to
    /// check a file out of its owner shard for a cross-shard group.
    pub(crate) fn take_file(&mut self, path: &str) -> Option<ServerFile> {
        self.files.remove(path)
    }

    /// Installs a complete file entry under `path` (the check-in half of
    /// [`CloudServer::take_file`]). Does not touch the apply order.
    pub(crate) fn put_file(&mut self, path: String, file: ServerFile) {
        self.files.insert(path, file);
    }

    /// Drains every stored file entry, sorted by path for determinism.
    pub(crate) fn drain_files(&mut self) -> Vec<(String, ServerFile)> {
        let mut out: Vec<(String, ServerFile)> = self.files.drain().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Inserts a directory marker without going through a message.
    pub(crate) fn insert_dir(&mut self, path: &str) {
        self.dirs.insert(path.to_string());
    }

    /// Removes a directory marker without going through a message.
    pub(crate) fn remove_dir(&mut self, path: &str) {
        self.dirs.remove(path);
    }

    /// Rebuilds the idempotency memory from the stored files — used after
    /// reloading a crashed server from its persisted snapshot, where the
    /// in-memory `seen` map died with the process but every applied
    /// version is recoverable from the version histories (and every
    /// conflicted one from its conflict-copy file).
    pub(crate) fn rebuild_idempotency_index(&mut self) {
        self.seen.clear();
        for (path, file) in &self.files {
            let conflict = path.contains(".conflict-c");
            for v in file
                .history
                .iter()
                .map(|(v, _)| *v)
                .chain(file.version)
            {
                let outcome = if conflict {
                    ApplyOutcome::Conflict {
                        stored_as: path.clone(),
                    }
                } else {
                    ApplyOutcome::Applied
                };
                self.seen.insert(v, outcome);
            }
        }
    }

    fn bump(&mut self, path: &str, new_content: Bytes, new_version: Option<Version>) {
        let entry = self
            .files
            .entry(path.to_string())
            .or_insert_with(ServerFile::new);
        if let Some(old_version) = entry.version {
            entry
                .history
                .push_back((old_version, entry.content.clone()));
            while entry.history.len() > self.history_limit {
                entry.history.pop_front();
            }
        }
        entry.content = new_content;
        entry.version = new_version;
        self.apply_order.push(path.to_string());
    }

    fn apply_unchecked(&mut self, msg: &UpdateMsg) {
        match &msg.payload {
            UpdatePayload::Create => {
                self.files
                    .entry(msg.path.clone())
                    .or_insert_with(ServerFile::new)
                    .version = msg.version;
                self.apply_order.push(msg.path.clone());
            }
            UpdatePayload::Ops(ops) => {
                let mut content = self
                    .files
                    .get(&msg.path)
                    .map(|f| f.content.to_vec())
                    .unwrap_or_default();
                for op in ops {
                    self.cost.bytes_copied += op.payload_len();
                    self.cost.ops += 1;
                    op.apply_to(&mut content);
                }
                self.bump(&msg.path, Bytes::from(content), msg.version);
            }
            UpdatePayload::Delta { base_path, delta } => {
                let base = self
                    .files
                    .get(base_path)
                    .map(|f| f.content.clone())
                    .unwrap_or_default();
                self.cost.bytes_copied += delta.output_len();
                self.cost.ops += 1;
                match delta.apply(&base) {
                    Ok(new_content) => self.bump(&msg.path, Bytes::from(new_content), msg.version),
                    Err(_) => {
                        // Base mismatch slipped through (e.g. base file
                        // shorter than the delta expects): store nothing;
                        // version check should have caught this.
                    }
                }
            }
            UpdatePayload::Full(data) => {
                self.cost.bytes_copied += data.len() as u64;
                self.cost.ops += 1;
                self.bump(&msg.path, data.as_bytes().clone(), msg.version);
            }
            UpdatePayload::Rename { to } => {
                if let Some(f) = self.files.remove(&msg.path) {
                    self.files.insert(to.clone(), f);
                    self.apply_order.push(to.clone());
                }
            }
            UpdatePayload::Link { to } => {
                if let Some(f) = self.files.get(&msg.path).cloned() {
                    self.cost.bytes_copied += f.content.len() as u64;
                    self.files.insert(to.clone(), f);
                    self.apply_order.push(to.clone());
                }
            }
            UpdatePayload::Unlink => {
                self.files.remove(&msg.path);
                self.apply_order.push(msg.path.clone());
            }
            UpdatePayload::Mkdir => {
                self.dirs.insert(msg.path.clone());
            }
            UpdatePayload::Rmdir => {
                self.dirs.remove(&msg.path);
            }
        }
    }

    /// First-write-wins reconciliation: the current cloud version stays
    /// the latest; the incoming incremental data is applied against its
    /// matching base from history and stored as a conflict copy.
    fn apply_as_conflict(&mut self, msg: &UpdateMsg) -> ApplyOutcome {
        let base_path = match &msg.payload {
            UpdatePayload::Delta { base_path, .. } => base_path.as_str(),
            _ => msg.path.as_str(),
        };
        let base_content: Option<Bytes> = match msg.base {
            None => Some(Bytes::new()),
            Some(wanted) => self.files.get(base_path).and_then(|f| {
                f.history
                    .iter()
                    .find(|(v, _)| *v == wanted)
                    .map(|(_, c)| c.clone())
                    .or_else(|| {
                        if f.version == Some(wanted) {
                            Some(f.content.clone())
                        } else {
                            None
                        }
                    })
            }),
        };
        let Some(base_content) = base_content else {
            return ApplyOutcome::Rejected {
                reason: format!("unknown base version for {}", msg.path),
            };
        };
        let client = msg.version.map(|v| v.client.0).unwrap_or_default();
        let stored_as = format!("{}.conflict-c{}", msg.path, client);
        let new_content = match &msg.payload {
            UpdatePayload::Ops(ops) => {
                let mut content = base_content.to_vec();
                for op in ops {
                    self.cost.bytes_copied += op.payload_len();
                    op.apply_to(&mut content);
                }
                Bytes::from(content)
            }
            UpdatePayload::Delta { delta, .. } => match delta.apply(&base_content) {
                Ok(c) => {
                    self.cost.bytes_copied += c.len() as u64;
                    Bytes::from(c)
                }
                Err(_) => {
                    return ApplyOutcome::Rejected {
                        reason: format!("delta does not fit base for {}", msg.path),
                    }
                }
            },
            UpdatePayload::Full(data) => data.as_bytes().clone(),
            // A create that lost the race materializes as an empty
            // conflict copy; the existing file stays untouched.
            UpdatePayload::Create => Bytes::new(),
            // Namespace ops cannot conflict in this model; apply directly.
            _ => {
                self.apply_unchecked(msg);
                return ApplyOutcome::Applied;
            }
        };
        let mut file = ServerFile::new();
        file.content = new_content;
        file.version = msg.version;
        self.files.insert(stored_as.clone(), file);
        self.apply_order.push(stored_as.clone());
        ApplyOutcome::Conflict { stored_as }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClientId, FileOpItem, Payload};

    fn v(c: u32, n: u64) -> Version {
        Version {
            client: ClientId(c),
            counter: n,
        }
    }

    fn ops_msg(path: &str, base: Option<Version>, ver: Version, ops: Vec<FileOpItem>) -> UpdateMsg {
        UpdateMsg {
            path: path.into(),
            base,
            version: Some(ver),
            payload: UpdatePayload::Ops(ops),
            txn: None,
            group: None,
        }
    }

    fn write_op(offset: u64, data: &'static [u8]) -> FileOpItem {
        FileOpItem::Write {
            offset,
            data: Payload::from_static(data),
        }
    }

    #[test]
    fn create_then_ops_builds_content() {
        let mut s = CloudServer::new();
        let create = UpdateMsg {
            path: "/f".into(),
            base: None,
            version: Some(v(1, 1)),
            payload: UpdatePayload::Create,
            txn: None,
            group: None,
        };
        assert_eq!(s.apply_msg(&create), ApplyOutcome::Applied);
        let msg = ops_msg("/f", Some(v(1, 1)), v(1, 2), vec![write_op(0, b"hello")]);
        assert_eq!(s.apply_msg(&msg), ApplyOutcome::Applied);
        assert_eq!(s.file("/f"), Some(&b"hello"[..]));
        assert_eq!(s.version("/f"), Some(v(1, 2)));
    }

    #[test]
    fn stale_base_becomes_conflict_copy() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"base")]));
        // Client 2 updates from v(1,1): wins.
        s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(2, 1),
            vec![write_op(0, b"AAAA")],
        ));
        // Client 3 also updates from v(1,1): late, becomes a conflict.
        let out = s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(3, 1),
            vec![write_op(0, b"BB")],
        ));
        match out {
            ApplyOutcome::Conflict { stored_as } => {
                assert_eq!(stored_as, "/f.conflict-c3");
                // Conflict content = historical base with client 3's
                // increment applied — no re-upload needed.
                assert_eq!(s.file("/f.conflict-c3"), Some(&b"BBse"[..]));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The first write stayed the latest.
        assert_eq!(s.file("/f"), Some(&b"AAAA"[..]));
        assert_eq!(s.version("/f"), Some(v(2, 1)));
    }

    #[test]
    fn unknown_base_is_rejected() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"x")]));
        let out = s.apply_msg(&ops_msg(
            "/f",
            Some(v(9, 9)),
            v(2, 1),
            vec![write_op(0, b"y")],
        ));
        assert!(matches!(out, ApplyOutcome::Rejected { .. }));
    }

    #[test]
    fn delta_applies_against_named_base_path() {
        use deltacfs_delta::{Delta, DeltaOp};
        let mut s = CloudServer::new();
        // Old version preserved as /t0 (Word's transactional update).
        s.apply_msg(&ops_msg(
            "/t0",
            None,
            v(1, 1),
            vec![write_op(0, b"old content")],
        ));
        let delta = Delta::from_ops(vec![
            DeltaOp::Copy { offset: 0, len: 4 },
            DeltaOp::Literal(Bytes::from_static(b"NEW")),
        ]);
        let msg = UpdateMsg {
            path: "/f".into(),
            base: Some(v(1, 1)),
            version: Some(v(1, 2)),
            payload: UpdatePayload::Delta {
                base_path: "/t0".into(),
                delta,
            },
            txn: None,
            group: None,
        };
        assert_eq!(s.apply_msg(&msg), ApplyOutcome::Applied);
        assert_eq!(s.file("/f"), Some(&b"old NEW"[..]));
    }

    #[test]
    fn rename_link_unlink_namespace_ops() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/a", None, v(1, 1), vec![write_op(0, b"data")]));
        s.apply_msg(&UpdateMsg {
            path: "/a".into(),
            base: None,
            version: None,
            payload: UpdatePayload::Link { to: "/a~".into() },
            txn: None,
            group: None,
        });
        assert_eq!(s.file("/a~"), Some(&b"data"[..]));
        s.apply_msg(&UpdateMsg {
            path: "/a".into(),
            base: None,
            version: None,
            payload: UpdatePayload::Rename { to: "/b".into() },
            txn: None,
            group: None,
        });
        assert!(s.file("/a").is_none());
        assert_eq!(s.file("/b"), Some(&b"data"[..]));
        s.apply_msg(&UpdateMsg {
            path: "/b".into(),
            base: None,
            version: None,
            payload: UpdatePayload::Unlink,
            txn: None,
            group: None,
        });
        assert!(s.file("/b").is_none());
    }

    #[test]
    fn txn_all_or_conflict() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/x", None, v(1, 1), vec![write_op(0, b"x0")]));
        s.apply_msg(&ops_msg("/y", None, v(1, 2), vec![write_op(0, b"y0")]));
        // A group where /y's base is stale: every member conflicts.
        let group = vec![
            ops_msg("/x", Some(v(1, 1)), v(2, 1), vec![write_op(0, b"X")]),
            ops_msg("/y", Some(v(9, 9)), v(2, 2), vec![write_op(0, b"Y")]),
        ];
        let outcomes = s.apply_txn(&group);
        assert!(matches!(outcomes[0], ApplyOutcome::Conflict { .. }));
        // /x unchanged — atomicity held.
        assert_eq!(s.file("/x"), Some(&b"x0"[..]));
        // A fully valid group applies wholesale.
        let group = vec![
            ops_msg("/x", Some(v(1, 1)), v(2, 3), vec![write_op(0, b"X")]),
            ops_msg("/y", Some(v(1, 2)), v(2, 4), vec![write_op(0, b"Y")]),
        ];
        let outcomes = s.apply_txn(&group);
        assert!(outcomes.iter().all(|o| *o == ApplyOutcome::Applied));
        assert_eq!(s.file("/x"), Some(&b"X0"[..]));
    }

    #[test]
    fn apply_order_is_recorded() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/big", None, v(1, 1), vec![write_op(0, b"bbbb")]));
        s.apply_msg(&ops_msg("/small", None, v(1, 2), vec![write_op(0, b"s")]));
        assert_eq!(s.apply_order(), &["/big".to_string(), "/small".to_string()]);
    }

    #[test]
    fn conflict_resolution_keep_or_discard() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"base")]));
        s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(2, 1),
            vec![write_op(0, b"AAAA")],
        ));
        let out = s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(3, 1),
            vec![write_op(0, b"BB")],
        ));
        let ApplyOutcome::Conflict { stored_as } = out else {
            panic!("expected conflict");
        };
        // The user picks the losing version.
        assert!(s.resolve_conflict_keep_copy("/f", &stored_as, v(3, 2)));
        assert_eq!(s.file("/f"), Some(&b"BBse"[..]));
        assert_eq!(s.version("/f"), Some(v(3, 2)));
        assert!(s.file(&stored_as).is_none());
        // The overwritten winner is still retained in history.
        assert_eq!(s.file_at("/f", v(2, 1)), Some(&b"AAAA"[..]));
        // Discarding a nonexistent copy reports false.
        assert!(!s.resolve_conflict_discard(&stored_as));
    }

    #[test]
    fn version_history_and_restore() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"one")]));
        s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(1, 2),
            vec![write_op(0, b"two")],
        ));
        s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 2)),
            v(1, 3),
            vec![write_op(0, b"tri")],
        ));
        assert_eq!(s.version_history("/f"), vec![v(1, 1), v(1, 2), v(1, 3)]);
        assert_eq!(s.file_at("/f", v(1, 1)), Some(&b"one"[..]));
        assert_eq!(s.file_at("/f", v(1, 3)), Some(&b"tri"[..]));
        assert_eq!(s.file_at("/f", v(9, 9)), None);
        // Restore to the first version under a fresh version number.
        assert!(s.restore("/f", v(1, 1), v(1, 4)));
        assert_eq!(s.file("/f"), Some(&b"one"[..]));
        assert_eq!(s.version("/f"), Some(v(1, 4)));
        // The pre-restore content is itself retained.
        assert_eq!(s.file_at("/f", v(1, 3)), Some(&b"tri"[..]));
        // Restoring an evicted/unknown version fails cleanly.
        assert!(!s.restore("/f", v(9, 9), v(1, 5)));
        assert!(s.version_history("/missing").is_empty());
    }

    #[test]
    fn history_is_bounded() {
        let mut s = CloudServer::new();
        for i in 0..50u64 {
            let base = if i == 0 { None } else { Some(v(1, i)) };
            s.apply_msg(&ops_msg("/f", base, v(1, i + 1), vec![write_op(0, b"z")]));
        }
        assert!(s.files["/f"].history.len() <= DEFAULT_HISTORY);
    }

    #[test]
    fn idempotent_apply_absorbs_retransmissions() {
        let mut s = CloudServer::new();
        let group = vec![ops_msg("/f", None, v(1, 1), vec![write_op(0, b"once")])];
        let (first, dup) = s.apply_txn_idempotent(&group);
        assert_eq!(first, vec![ApplyOutcome::Applied]);
        assert!(!dup);
        // The same group retransmitted: outcomes replayed, state untouched.
        let (second, dup) = s.apply_txn_idempotent(&group);
        assert_eq!(second, vec![ApplyOutcome::Applied]);
        assert!(dup);
        assert_eq!(s.duplicates_ignored(), 1);
        assert_eq!(s.version_history("/f"), vec![v(1, 1)]);
        assert!(s.has_seen(v(1, 1)));
        assert!(!s.has_seen(v(1, 2)));
    }

    #[test]
    fn idempotent_apply_replays_conflict_outcomes() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"base")]));
        s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(2, 1),
            vec![write_op(0, b"AAAA")],
        ));
        let late = vec![ops_msg(
            "/f",
            Some(v(1, 1)),
            v(3, 1),
            vec![write_op(0, b"BB")],
        )];
        let (first, _) = s.apply_txn_idempotent(&late);
        let (replayed, dup) = s.apply_txn_idempotent(&late);
        assert!(dup);
        assert_eq!(first, replayed);
        assert!(matches!(replayed[0], ApplyOutcome::Conflict { .. }));
        // Only one conflict copy materialized.
        let copies = s
            .paths()
            .iter()
            .filter(|p| p.contains(".conflict"))
            .count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn rebuilt_index_still_deduplicates() {
        let mut s = CloudServer::new();
        let group = vec![ops_msg("/f", None, v(1, 1), vec![write_op(0, b"x")])];
        s.apply_txn_idempotent(&group);
        // Simulate a crash: the in-memory map dies, the index is rebuilt
        // from the (persisted) file state.
        s.seen.clear();
        s.rebuild_idempotency_index();
        let (_, dup) = s.apply_txn_idempotent(&group);
        assert!(dup);
        assert_eq!(s.version_history("/f"), vec![v(1, 1)]);
    }

    fn gid(c: u32, n: u64) -> GroupId {
        GroupId {
            client: ClientId(c),
            seq: n,
        }
    }

    #[test]
    fn late_versionless_rename_replay_cannot_clobber_recreated_path() {
        // Regression for the version-less dedup hole: a pure rename
        // group carries no version, so the per-version index never saw
        // it — a late (reordered) duplicate re-executed the rename
        // against whatever path state existed by then. The
        // `<CliID, GroupSeq>` index recognizes the replay regardless.
        let mut s = CloudServer::new();
        let mut setup = vec![ops_msg("/old", None, v(1, 1), vec![write_op(0, b"payload")])];
        setup[0].group = Some(gid(1, 1));
        s.apply_txn_idempotent(&setup);
        // A namespace-only group: no version anywhere in it.
        let rename = vec![UpdateMsg {
            path: "/old".into(),
            base: None,
            version: None,
            payload: UpdatePayload::Rename { to: "/new".into() },
            txn: None,
            group: Some(gid(1, 2)),
        }];
        let (first, dup) = s.apply_txn_idempotent(&rename);
        assert!(!dup);
        // The path is later recreated with fresh content...
        let mut recreate = vec![ops_msg("/old", None, v(1, 2), vec![write_op(0, b"fresh")])];
        recreate[0].group = Some(gid(1, 3));
        s.apply_txn_idempotent(&recreate);
        // ...and only then does the duplicated rename copy show up.
        let (replayed, dup) = s.apply_txn_idempotent(&rename);
        assert!(dup, "group index must recognize the version-less replay");
        assert_eq!(replayed, first);
        assert!(s.has_seen_group(gid(1, 2)));
        assert_eq!(s.file("/old"), Some(&b"fresh"[..]));
        assert_eq!(s.file("/new"), Some(&b"payload"[..]));
    }

    #[test]
    fn whole_group_outcome_is_recorded_atomically() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"base")]));
        s.apply_msg(&ops_msg(
            "/f",
            Some(v(1, 1)),
            v(2, 1),
            vec![write_op(0, b"AAAA")],
        ));
        // A two-member group whose first member carries a stale base:
        // validation fails group-wide, so *every* member lands as a
        // conflict copy (atomic-group semantics), and the record must
        // carry the full outcome vector as one unit.
        let mut group = vec![
            ops_msg("/f", Some(v(1, 1)), v(3, 1), vec![write_op(0, b"BB")]),
            UpdateMsg {
                path: "/g".into(),
                base: None,
                version: Some(v(3, 2)),
                payload: UpdatePayload::Full(Payload::from_static(b"new")),
                txn: None,
                group: None,
            },
        ];
        for m in &mut group {
            m.group = Some(gid(3, 1));
        }
        let (first, dup) = s.apply_txn_idempotent(&group);
        assert!(!dup);
        assert!(matches!(first[0], ApplyOutcome::Conflict { .. }));
        assert!(matches!(first[1], ApplyOutcome::Conflict { .. }));
        // Exactly one whole-group record, holding every member's
        // outcome — there is no observable half-recorded state.
        let records: Vec<_> = s.group_records().collect();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, gid(3, 1));
        assert_eq!(records[0].1, &first[..]);
        // The replay returns the recorded outcomes verbatim and mints
        // no second round of conflict copies.
        let copies_before = s.paths().iter().filter(|p| p.contains(".conflict")).count();
        let (replayed, dup) = s.apply_txn_idempotent(&group);
        assert!(dup);
        assert_eq!(replayed, first);
        let copies_after = s.paths().iter().filter(|p| p.contains(".conflict")).count();
        assert_eq!(copies_before, copies_after);
    }

    #[test]
    fn create_of_existing_file_conflicts_not_duplicates() {
        let mut s = CloudServer::new();
        s.apply_msg(&ops_msg("/f", None, v(1, 1), vec![write_op(0, b"x")]));
        let out = s.apply_msg(&UpdateMsg {
            path: "/f".into(),
            base: None,
            version: Some(v(2, 1)),
            payload: UpdatePayload::Create,
            txn: None,
            group: None,
        });
        // An empty create against an existing file materializes as a
        // (trivially empty) conflict copy.
        assert!(matches!(
            out,
            ApplyOutcome::Conflict { .. } | ApplyOutcome::Rejected { .. }
        ));
        assert_eq!(s.file("/f"), Some(&b"x"[..]));
    }
}
