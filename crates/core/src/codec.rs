//! Adaptive per-chunk wire compression: the cost-benefit controller
//! that decides, frame by frame, whether shipping a chunk compressed
//! beats shipping it raw.
//!
//! The decision model follows the cost-benefit analysis the related
//! work applies to sync protocols: compressing a chunk costs CPU time
//! proportional to its raw size (the platform's `w_compressed` weight),
//! and saves wire time proportional to the bytes it removes (bandwidth
//! plus the per-byte network-stack CPU). A mobile client behind a
//! 1 MiB/s uplink should compress almost anything that isn't already
//! high-entropy; a LAN client with an unconstrained link should ship
//! nearly everything raw. The inputs are:
//!
//! * a cheap **entropy probe** ([`probe_ratio_sampled`]) over a strided
//!   sample of the frame's bytes, predicting the compression ratio
//!   without running the compressor;
//! * an **adaptive bias**: an EWMA of (observed − predicted) ratio over
//!   the chunks actually compressed, correcting the probe for the
//!   workload at hand (Shannon entropy underestimates LZ77 on
//!   repetitive structure and overestimates it on short chunks);
//! * the link profile: direction bandwidth and the platform's
//!   [`compress_ms`](PlatformProfile::compress_ms)/`w_net` weights.
//!
//! Whatever the decision, the wire is **never worse than raw**: a
//! compressed envelope ships only when it is strictly smaller than both
//! the frame's real bytes and its accounted model bytes, so
//! incompressible traffic pays zero overhead — raw frames are untagged
//! and byte-identical to the pre-codec format.
//!
//! Compression CPU is charged twice, deliberately, in two different
//! currencies: `Cost::bytes_compressed` on the codec's **own** [`Cost`]
//! accumulator (work counting, deterministic for any thread count, kept
//! separate so a compressed run's client/server `Cost` totals stay
//! byte-identical to a raw run's), and simulated milliseconds on the
//! link via the codec-aware part methods (timing).

use bytes::Bytes;
use deltacfs_delta::{compress, Cost};
use deltacfs_net::{LinkSpec, PlatformProfile};
use deltacfs_obs::{Counter, Histogram, Obs};

use crate::pipeline::ChunkFrame;
use crate::protocol::Payload;
use crate::wire::{self, Codec};

/// Frames smaller than this always ship raw: the envelope overhead and
/// the per-call probe cost can't pay for themselves.
const MIN_COMPRESS_BYTES: u64 = 64;

/// EWMA weight of the newest (observed − predicted) ratio sample.
const BIAS_ALPHA: f64 = 0.2;

/// How the controller picks compress-vs-raw for each frame.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecPolicy {
    /// The cost-benefit model decides per frame (production mode).
    Adaptive,
    /// Attempt compression on every frame (the never-worse-than-raw
    /// guard still ships incompressible frames raw).
    Always,
    /// Ship everything raw — the codec is a no-op and frames are
    /// byte-identical to the pre-codec wire format.
    Never,
    /// Fixed decision sequence, cycled over frames — lets property
    /// tests drive *any* interleaving of compressed and raw frames
    /// through one stream.
    Schedule(Vec<bool>),
}

/// Per-direction wire codec: compresses chunk frames on their way onto
/// the link and keeps the controller state (bias feedback, counters,
/// its own [`Cost`]).
///
/// One instance per stream direction: the engine owns an upload-side
/// codec (client compresses), each hub slot owns a download-side codec
/// for its forward stream (server compresses). Decisions happen on the
/// encoder thread, sequentially per frame, so they are deterministic
/// for any pipeline depth or worker count.
#[derive(Debug)]
pub struct WireCodec {
    policy: CodecPolicy,
    profile: PlatformProfile,
    /// Bytes/s of the direction this codec feeds (`None` =
    /// unconstrained link: no wire time to save).
    bandwidth: Option<u64>,
    schedule_pos: usize,
    bias: f64,
    cost: Cost,
    obs: Obs,
    compressed_chunks: Counter,
    raw_chunks: Counter,
    bytes_saved: Counter,
    ratio_pct: Histogram,
}

/// Bucket bounds for the `wire_compress_ratio_pct` histogram
/// (compressed/raw, percent).
const RATIO_BUCKETS_PCT: [u64; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

impl WireCodec {
    /// A codec for one link direction. `bandwidth` is the direction's
    /// bytes/s (`LinkSpec::bandwidth_up` for uploads,
    /// `bandwidth_down` for forwards); `profile` is the platform doing
    /// the compressing.
    pub fn new(policy: CodecPolicy, profile: PlatformProfile, bandwidth: Option<u64>) -> Self {
        let obs = Obs::new();
        let mut codec = WireCodec {
            policy,
            profile,
            bandwidth,
            schedule_pos: 0,
            bias: 0.0,
            cost: Cost::new(),
            compressed_chunks: obs.registry.counter("wire_compress_chunks", ""),
            raw_chunks: obs.registry.counter("wire_raw_chunks", ""),
            bytes_saved: obs.registry.counter("wire_compress_bytes_saved", ""),
            ratio_pct: obs
                .registry
                .histogram("wire_compress_ratio_pct", "", &RATIO_BUCKETS_PCT),
            obs: obs.clone(),
        };
        codec.attach_obs(&obs);
        codec
    }

    /// The upload-direction codec for a client on `spec`.
    pub fn for_upload(policy: CodecPolicy, profile: PlatformProfile, spec: LinkSpec) -> Self {
        Self::new(policy, profile, spec.bandwidth_up)
    }

    /// The download-direction codec for the server forwarding to a
    /// client on `spec` (the server — a PC-class platform — does the
    /// compressing).
    pub fn for_forward(policy: CodecPolicy, spec: LinkSpec) -> Self {
        Self::new(policy, PlatformProfile::pc(), spec.bandwidth_down)
    }

    /// Rebinds the codec's metrics and trace stream onto a shared
    /// observability bundle.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.compressed_chunks = obs
            .registry
            .counter("wire_compress_chunks", "chunk frames shipped compressed");
        self.raw_chunks = obs
            .registry
            .counter("wire_raw_chunks", "chunk frames shipped raw");
        self.bytes_saved = obs.registry.counter(
            "wire_compress_bytes_saved",
            "accounted wire bytes removed by frame compression",
        );
        self.ratio_pct = obs.registry.histogram(
            "wire_compress_ratio_pct",
            "compressed/raw size of shipped compressed frames (percent)",
            &RATIO_BUCKETS_PCT,
        );
    }

    /// Replaces the compressing platform (and with it the CPU cost
    /// side of the decision model).
    pub fn set_profile(&mut self, profile: PlatformProfile) {
        self.profile = profile;
    }

    /// Replaces the decision policy mid-stream (tests drive decision
    /// schedules through this).
    pub fn set_policy(&mut self, policy: CodecPolicy) {
        self.policy = policy;
        self.schedule_pos = 0;
    }

    /// Whether this codec can ever emit a compressed frame.
    pub fn enabled(&self) -> bool {
        self.policy != CodecPolicy::Never
    }

    /// The codec's own work accumulator: every byte fed to the
    /// compressor is charged here as `bytes_compressed`, deterministic
    /// for any thread count — and kept out of the client/server `Cost`
    /// totals so those stay byte-identical to a raw-wire run.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Runs one frame through the controller. Returns the frame to put
    /// on the wire: either the input unchanged (raw) or a
    /// [`Codec::Lz77`]-tagged frame whose single control piece is the
    /// compressed envelope. The envelope ships only when strictly
    /// smaller than both the frame's real and accounted bytes — the
    /// never-worse-than-raw guarantee.
    pub fn encode_frame(&mut self, frame: ChunkFrame, at_ms: u64) -> ChunkFrame {
        if self.policy == CodecPolicy::Never {
            return frame;
        }
        let raw_len = frame.byte_len();
        if raw_len < MIN_COMPRESS_BYTES {
            self.raw_chunks.inc();
            return frame;
        }
        let probe = probe_frame(&frame, raw_len);
        let attempt = match &self.policy {
            CodecPolicy::Never => unreachable!("handled above"),
            CodecPolicy::Always => true,
            CodecPolicy::Schedule(plan) => {
                let decision = plan.is_empty() || plan[self.schedule_pos % plan.len()];
                self.schedule_pos += 1;
                decision
            }
            CodecPolicy::Adaptive => self.worth_compressing(raw_len, probe),
        };
        if !attempt {
            self.raw_chunks.inc();
            return frame;
        }
        let mut raw = Vec::with_capacity(raw_len as usize);
        for piece in &frame.pieces {
            raw.extend_from_slice(piece.as_slice());
        }
        let compressed = compress::compress(&raw, &mut self.cost);
        let observed = compressed.len() as f64 / raw.len() as f64;
        // Outcome feedback: pull the probe toward what the compressor
        // actually achieved on this workload.
        self.bias += BIAS_ALPHA * ((observed - probe) - self.bias);
        let envelope = wire::encode_codec_envelope(raw_len, &compressed);
        let envelope_len = envelope.len() as u64;
        if envelope_len >= raw_len.min(frame.accounted) {
            // Not worth it after all — ship the original, untouched.
            self.raw_chunks.inc();
            return frame;
        }
        self.compressed_chunks.inc();
        self.bytes_saved.add(frame.accounted - envelope_len);
        self.ratio_pct
            .observe((observed * 100.0).round().clamp(0.0, 100.0) as u64);
        self.obs
            .tracer
            .event(at_ms, "codec", "wire.compress", || {
                format!(
                    "msg {} chunk {}: {} -> {} bytes (probe {:.2}, observed {:.2})",
                    frame.msg_idx, frame.chunk_idx, raw_len, envelope_len, probe, observed,
                )
            });
        // The compression CPU is charged on the link's timeline; the
        // span models it at the encode point with the platform's
        // deterministic `compress_ms` cost, so the profiler can weigh
        // compress CPU against the wire time it buys.
        self.obs.spans.record(
            frame.group.span_key(),
            "codec",
            "wire.compress",
            at_ms,
            at_ms + self.profile.compress_ms(raw_len),
            None,
            || {
                format!(
                    "msg {} chunk {}: {} -> {} bytes",
                    frame.msg_idx, frame.chunk_idx, raw_len, envelope_len
                )
            },
        );
        ChunkFrame {
            pieces: vec![crate::pipeline::FramePiece::Control(Bytes::from(envelope))],
            accounted: envelope_len,
            codec: Codec::Lz77 { raw_len },
            ..frame
        }
    }

    /// The cost-benefit core: predicted wire+net time saved vs CPU time
    /// spent compressing, both in simulated milliseconds.
    fn worth_compressing(&self, raw_len: u64, probe: f64) -> bool {
        let predicted = (probe + self.bias).clamp(0.0, 1.0);
        let est_saved = raw_len as f64 * (1.0 - predicted);
        let wire_ms = match self.bandwidth {
            Some(bps) if bps > 0 => est_saved * 1000.0 / bps as f64,
            // Unconstrained link: transfers are free, only the network
            // stack's per-byte CPU is saved.
            _ => 0.0,
        };
        let net_cpu_ms = est_saved * self.profile.w_net * self.profile.scale;
        let cpu_ms = self.profile.compress_ms(raw_len) as f64;
        wire_ms + net_cpu_ms > cpu_ms
    }
}

/// Entropy probe over a frame's scatter-gather pieces without
/// concatenating them: a strided sample through the pieces' combined
/// byte range.
fn probe_frame(frame: &ChunkFrame, raw_len: u64) -> f64 {
    let mut spans: Vec<(u64, &[u8])> = Vec::with_capacity(frame.pieces.len());
    let mut off = 0u64;
    for piece in &frame.pieces {
        let bytes = piece.as_slice();
        spans.push((off, bytes));
        off += bytes.len() as u64;
    }
    compress::probe_ratio_sampled(raw_len as usize, |i| {
        let i = i as u64;
        let at = spans
            .partition_point(|(start, _)| *start <= i)
            .saturating_sub(1);
        let (start, bytes) = spans[at];
        bytes[(i - start) as usize]
    })
}

/// The one compression entry point shared by the wire codec and the
/// baseline engines: LZ77-compressed size of `data`, charging
/// `bytes_compressed` on `cost`. Baselines that model a
/// compress-everything wire (the paper's Dropbox) call this instead of
/// reaching into the compressor, so there is exactly one place where
/// "bytes on the wire after compression" is defined.
pub fn compressed_wire_size(data: &[u8], cost: &mut Cost) -> u64 {
    compress::compressed_size(data, cost)
}

/// Shorthand used by tests: the payload a codec frame would restore to.
#[doc(hidden)]
pub fn frame_payload(frame: &ChunkFrame) -> Payload {
    let mut out = Vec::with_capacity(frame.byte_len() as usize);
    for piece in &frame.pieces {
        out.extend_from_slice(piece.as_slice());
    }
    Payload::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FramePiece;
    use crate::protocol::{ClientId, GroupId};

    fn frame_of(bytes: Vec<u8>, accounted: u64) -> ChunkFrame {
        ChunkFrame {
            group: GroupId {
                client: ClientId(1),
                seq: 1,
            },
            msg_idx: 0,
            chunk_idx: 0,
            last_in_msg: true,
            last_in_group: true,
            pieces: vec![FramePiece::Control(Bytes::from(bytes))],
            accounted,
            codec: Codec::Raw,
        }
    }

    fn text(len: usize) -> Vec<u8> {
        b"the quick brown fox jumps over the lazy dog "
            .iter()
            .copied()
            .cycle()
            .take(len)
            .collect()
    }

    fn noise(len: usize) -> Vec<u8> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn mobile_compresses_text_and_ships_noise_raw() {
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Adaptive, PlatformProfile::mobile(), LinkSpec::mobile());
        let len = 64 * 1024;
        let out = codec.encode_frame(frame_of(text(len), len as u64), 0);
        assert!(matches!(out.codec, Codec::Lz77 { raw_len } if raw_len == len as u64));
        assert!(out.accounted < len as u64 / 2, "text should at least halve");
        let out = codec.encode_frame(frame_of(noise(len), len as u64), 0);
        assert_eq!(out.codec, Codec::Raw);
        assert_eq!(out.accounted, len as u64);
    }

    #[test]
    fn lan_ships_text_raw() {
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Adaptive, PlatformProfile::pc(), LinkSpec::pc());
        let len = 64 * 1024;
        let out = codec.encode_frame(frame_of(text(len), len as u64), 0);
        assert_eq!(out.codec, Codec::Raw, "unconstrained link: CPU not worth it");
    }

    #[test]
    fn always_policy_still_never_ships_a_larger_frame() {
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Always, PlatformProfile::pc(), LinkSpec::pc());
        for len in [64usize, 1024, 16 * 1024] {
            let out = codec.encode_frame(frame_of(noise(len), len as u64), 0);
            assert_eq!(out.codec, Codec::Raw, "incompressible stays raw at {len}");
            assert_eq!(out.accounted, len as u64);
        }
        // Compression work was attempted and charged on the codec's own
        // accumulator.
        assert!(codec.cost().bytes_compressed > 0);
    }

    #[test]
    fn schedule_policy_cycles_decisions() {
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Schedule(vec![true, false]), PlatformProfile::pc(), LinkSpec::pc());
        let len = 8 * 1024;
        let a = codec.encode_frame(frame_of(text(len), len as u64), 0);
        let b = codec.encode_frame(frame_of(text(len), len as u64), 0);
        let c = codec.encode_frame(frame_of(text(len), len as u64), 0);
        assert!(matches!(a.codec, Codec::Lz77 { .. }));
        assert_eq!(b.codec, Codec::Raw);
        assert!(matches!(c.codec, Codec::Lz77 { .. }));
    }

    #[test]
    fn tiny_frames_skip_the_codec_entirely() {
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Always, PlatformProfile::mobile(), LinkSpec::mobile());
        let out = codec.encode_frame(frame_of(text(32), 32), 0);
        assert_eq!(out.codec, Codec::Raw);
        assert_eq!(codec.cost().bytes_compressed, 0, "no attempt below the floor");
    }

    #[test]
    fn bias_feedback_tracks_observed_ratio() {
        // The probe on highly repetitive text overestimates the LZ77
        // ratio; after a few compressed frames the bias goes negative,
        // recording that the compressor beats the entropy estimate.
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Always, PlatformProfile::mobile(), LinkSpec::mobile());
        for _ in 0..4 {
            codec.encode_frame(frame_of(text(64 * 1024), 64 * 1024), 0);
        }
        assert!(codec.bias < 0.0, "bias {} should correct downward", codec.bias);
    }

    #[test]
    fn compressed_frames_roundtrip_through_the_stager_path() {
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Always, PlatformProfile::mobile(), LinkSpec::mobile());
        let body = text(16 * 1024);
        let out = codec.encode_frame(frame_of(body.clone(), body.len() as u64), 0);
        let Codec::Lz77 { raw_len } = out.codec else {
            panic!("text frame should compress");
        };
        assert_eq!(raw_len, body.len() as u64);
        let env = frame_payload(&out);
        let (declared, comp) = wire::decode_codec_envelope(&env).expect("envelope parses");
        assert_eq!(declared, raw_len);
        let restored =
            compress::decompress_limited(comp, raw_len as usize).expect("envelope inflates");
        assert_eq!(restored, body);
    }

    #[test]
    fn metrics_count_compressed_and_raw_chunks() {
        let obs = Obs::new();
        let mut codec =
            WireCodec::for_upload(CodecPolicy::Adaptive, PlatformProfile::mobile(), LinkSpec::mobile());
        codec.attach_obs(&obs);
        let len = 64 * 1024;
        codec.encode_frame(frame_of(text(len), len as u64), 0);
        codec.encode_frame(frame_of(noise(len), len as u64), 0);
        let snap = obs.registry.snapshot();
        let counter = |name: &str| match snap.get(name) {
            Some(deltacfs_obs::MetricValue::Counter(v)) => *v,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(counter("wire_compress_chunks"), 1);
        assert_eq!(counter("wire_raw_chunks"), 1);
        assert!(counter("wire_compress_bytes_saved") > len as u64 / 2);
    }
}
