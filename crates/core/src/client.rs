//! The DeltaCFS client engine (paper §III).
//!
//! The engine consumes the intercepted operation stream from the VFS and
//! produces versioned incremental updates:
//!
//! * every file gets **NFS-like file RPC** by default — intercepted writes
//!   are batched into sync-queue write nodes and shipped verbatim;
//! * the **relation table** watches rename/unlink patterns; when a
//!   transactional update is recognized (Word, gedit, delete-then-rewrite)
//!   the batched RPC nodes are superseded by one **locally computed
//!   delta** (rolling checksums + bitwise comparison, no MD5);
//! * an **undo log** of overwritten bytes lets the engine delta-compress
//!   in-place updates that modified a large fraction of a file;
//! * a **checksum store** (4 KB blocks, rolling checksums in a KV store)
//!   detects silent corruption and post-crash inconsistency before they
//!   are propagated to the cloud;
//! * versions are client-assigned `<CliID, VerCnt>` pairs; causal order is
//!   preserved by the sync queue's backindex transactions.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use deltacfs_delta::{
    local, segment_bounds, take_hierarchy_stats, Cost, DeltaParams, HierarchyStats,
};
use deltacfs_kvstore::{KeyValue, MemStore};
use deltacfs_net::{SimClock, SimTime};
use deltacfs_obs::Obs;
use deltacfs_vfs::{OpEvent, Vfs};

use crate::checksum_store::ChecksumStore;
use crate::config::{CausalMode, DeltaCfsConfig};
use crate::protocol::{ClientId, FileOpItem, GroupId, Payload, UpdateMsg, UpdatePayload, Version};
use crate::relation_table::{OldVersion, Preserved, RelationTable};
use crate::sync_queue::{NodeKind, SyncQueue};
use crate::undo_log::UndoLog;

/// An integrity problem the engine detected and refused to propagate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityIssue {
    /// The affected file.
    pub path: String,
    /// The mismatching block indices.
    pub blocks: Vec<u64>,
    /// What kind of fault this looks like.
    pub kind: IssueKind,
}

/// Classification of a detected integrity problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// A block changed without any operation passing the interception
    /// layer while the system was running (silent corruption).
    Corruption,
    /// A recently modified file disagrees with its checksums after a
    /// crash (ordered-journaling inconsistency).
    CrashInconsistency,
}

/// A conflict noticed while applying a remote (forwarded) update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteConflict {
    /// The contested file.
    pub path: String,
    /// Where the local (losing) content was preserved.
    pub local_copy: String,
}

/// The DeltaCFS client engine, generic over the checksum-store backend.
#[derive(Debug)]
pub struct DeltaCfsClient<K: KeyValue = MemStore> {
    id: ClientId,
    cfg: DeltaCfsConfig,
    clock: SimClock,
    relation: RelationTable,
    queue: SyncQueue,
    /// Latest version assigned or observed per path.
    versions: HashMap<String, Version>,
    /// File sizes tracked from the event stream (for undo-log bookkeeping).
    sizes: HashMap<String, u64>,
    ver_counter: u64,
    /// Monotonic upload-group counter: every group leaving this client is
    /// stamped `<CliID, GroupSeq>` from here. Like `ver_counter` it is
    /// never reset — a crash rebuilds the queue but not the counters, so
    /// post-restart groups can never collide with pre-crash sequence
    /// numbers in the server's replay index.
    group_counter: u64,
    pending_delta: HashMap<String, Preserved>,
    undo: HashMap<String, UndoLog>,
    /// The version a file held when its (currently open) undo batch
    /// started — i.e. the newest version the cloud could have acked for
    /// it. Crash recovery replays the undo log as a delta only when the
    /// cloud is still at this base.
    undo_base: HashMap<String, Version>,
    checksums: Option<ChecksumStore<K>>,
    quarantined: HashSet<String>,
    issues: Vec<IntegrityIssue>,
    next_txn: u64,
    last_snapshot: SimTime,
    cost: Cost,
    /// Observability bundle; default-disabled tracer, so every trace call
    /// below costs one relaxed atomic load until [`DeltaCfsClient::set_obs`]
    /// installs a live one.
    obs: Obs,
    /// Actor name under which this client's trace events are recorded.
    actor: String,
    /// Span timestamps observed per path before the path's nodes were
    /// packed into an upload group — the `<CliID, GroupSeq>` span
    /// context only exists once `convert_groups` stamps the group, so
    /// relation triggers and delta encodes mark here and drain into
    /// parented spans at pack time.
    span_marks: HashMap<String, PathSpanMarks>,
    /// Accumulated hierarchical-matcher statistics across this client's
    /// delta encodes (drained from the per-thread accumulator right
    /// after each diff call). Wall-clock bookkeeping only — the diff
    /// [`Cost`] stays byte-identical to the plain matcher's by contract.
    hierarchy_stats: HierarchyStats,
}

/// Pending span marks for one path (see `DeltaCfsClient::span_marks`).
#[derive(Debug, Clone, Copy, Default)]
struct PathSpanMarks {
    /// When a relation-table trigger fired for the path.
    relation_ms: Option<u64>,
    /// Start/end of the local delta encode for the path.
    encode: Option<(u64, u64)>,
    /// When the hierarchical matcher engaged for the path's encode.
    hierarchy_ms: Option<u64>,
}

impl DeltaCfsClient<MemStore> {
    /// Creates a client with an in-memory checksum store.
    pub fn new(id: ClientId, cfg: DeltaCfsConfig, clock: SimClock) -> Self {
        Self::with_backend(id, cfg, clock, MemStore::new())
    }
}

impl<K: KeyValue> DeltaCfsClient<K> {
    /// Creates a client with an explicit checksum-store backend (e.g. the
    /// persistent [`deltacfs_kvstore::KvStore`]).
    pub fn with_backend(id: ClientId, cfg: DeltaCfsConfig, clock: SimClock, backend: K) -> Self {
        let checksums = cfg
            .checksums
            .then(|| ChecksumStore::new(backend, cfg.block_size));
        DeltaCfsClient {
            id,
            cfg,
            relation: RelationTable::new(cfg.relation_timeout_ms),
            queue: SyncQueue::new(cfg.upload_delay_ms),
            versions: HashMap::new(),
            sizes: HashMap::new(),
            ver_counter: 0,
            group_counter: 0,
            pending_delta: HashMap::new(),
            undo: HashMap::new(),
            undo_base: HashMap::new(),
            checksums,
            quarantined: HashSet::new(),
            issues: Vec::new(),
            next_txn: 1,
            last_snapshot: SimTime::ZERO,
            clock,
            cost: Cost::new(),
            obs: Obs::new(),
            actor: format!("client-{}", id.0),
            span_marks: HashMap::new(),
            hierarchy_stats: HierarchyStats::default(),
        }
    }

    /// The delta tuning this client's config selects, shared by every
    /// diff site so the hierarchy/parallelism gates cannot drift.
    fn delta_params(&self) -> DeltaParams {
        DeltaParams::with_block_size(self.cfg.block_size)
            .with_min_parallel_bytes(self.cfg.min_parallel_bytes)
            .with_hierarchy(self.cfg.hierarchy_params())
    }

    /// Drains the hierarchy stats the just-finished diff recorded on this
    /// thread into the client accumulator, returning what was added.
    fn absorb_hierarchy_stats(&mut self) -> HierarchyStats {
        let stats = take_hierarchy_stats();
        self.hierarchy_stats.merge(&stats);
        stats
    }

    /// Cumulative hierarchical-matcher statistics for this client.
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        self.hierarchy_stats
    }

    /// Marks a relation-table trigger on `path` for span assembly; a
    /// single relaxed atomic load while profiling is off.
    fn mark_relation(&mut self, path: &str, now: SimTime) {
        if self.obs.spans.enabled() {
            self.span_marks
                .entry(path.to_string())
                .or_default()
                .relation_ms = Some(now.as_millis());
        }
    }

    /// Installs a shared observability bundle: trace events from this
    /// client flow into `obs.tracer` under the actor name `client-<id>`.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// This client's identifier.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Work performed so far.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// The client's configuration.
    pub fn config(&self) -> &DeltaCfsConfig {
        &self.cfg
    }

    /// Resets the work counters.
    pub fn reset_cost(&mut self) {
        self.cost = Cost::new();
    }

    /// Integrity issues detected so far.
    pub fn issues(&self) -> &[IntegrityIssue] {
        &self.issues
    }

    /// Number of nodes waiting in the sync queue (diagnostics).
    pub fn queued_nodes(&self) -> usize {
        self.queue.len()
    }

    /// The latest version this client knows for `path`.
    pub fn version_of(&self, path: &str) -> Option<Version> {
        self.versions.get(path).copied()
    }

    fn next_version(&mut self) -> Version {
        self.ver_counter += 1;
        Version {
            client: self.id,
            counter: self.ver_counter,
        }
    }

    /// When a fresh undo batch opens for `path`, remember which version
    /// the file had — the delta base crash recovery will need.
    fn note_undo_base(&mut self, path: &str) {
        if self.undo.get(path).is_none_or(UndoLog::is_empty) {
            match self.versions.get(path) {
                Some(v) => {
                    self.undo_base.insert(path.to_string(), *v);
                }
                None => {
                    self.undo_base.remove(path);
                }
            }
        }
    }

    fn clear_undo(&mut self, path: &str) {
        self.undo.remove(path);
        self.undo_base.remove(path);
    }

    fn peek(&mut self, fs: &Vfs, path: &str) -> Vec<u8> {
        let content = fs.peek_all(path).unwrap_or_default();
        self.cost.bytes_engine_read += content.len() as u64;
        content
    }

    /// Enqueues full-content uploads for every file already present in
    /// `fs` (initial sync of a pre-existing folder).
    pub fn bootstrap(&mut self, fs: &Vfs) {
        let now = self.clock.now();
        let paths = fs.walk_files("/").unwrap_or_default();
        for path in paths {
            let content = self.peek(fs, path.as_str());
            if let Some(cs) = &mut self.checksums {
                cs.reindex_file(path.as_str(), &content, &mut self.cost)
                    .ok();
            }
            let version = self.next_version();
            self.sizes.insert(path.to_string(), content.len() as u64);
            self.queue.push(
                NodeKind::Full {
                    path: path.to_string(),
                    data: Payload::from(content),
                },
                None,
                Some(version),
                now,
            );
            self.versions.insert(path.to_string(), version);
        }
    }

    /// Feeds one intercepted operation into the engine.
    ///
    /// Events must be delivered *before* the file system advances further
    /// (FUSE interception is synchronous). Delivering a batch of events at
    /// once is safe for plain in-place workloads, but transactional
    /// updates whose preserved old version (`t0`) is unlinked within the
    /// same batch will fall back to a full upload, because the old content
    /// is no longer readable when the trigger fires.
    pub fn handle_event(&mut self, event: &OpEvent, fs: &Vfs) {
        let now = self.clock.now();
        self.obs
            .tracer
            .event(now.as_millis(), &self.actor, "vfs.op", || {
                op_summary(event)
            });
        match event {
            OpEvent::Create { path } => self.on_create(path.as_str(), now),
            OpEvent::Write {
                path,
                offset,
                data,
                overwritten,
            } => self.on_write(path.as_str(), *offset, data, overwritten, fs, now),
            OpEvent::Truncate { path, size, cut } => {
                self.on_truncate(path.as_str(), *size, cut, fs, now)
            }
            OpEvent::Rename { src, dst, replaced } => {
                self.on_rename(src.as_str(), dst.as_str(), replaced.clone(), fs, now)
            }
            OpEvent::Link { src, dst } => self.on_link(src.as_str(), dst.as_str(), now),
            OpEvent::Unlink { path, removed } => {
                self.on_unlink(path.as_str(), removed.clone(), now)
            }
            OpEvent::Mkdir { path } => {
                self.queue.push(
                    NodeKind::Mkdir {
                        path: path.to_string(),
                    },
                    None,
                    None,
                    now,
                );
            }
            OpEvent::Rmdir { path } => {
                self.queue.push(
                    NodeKind::Rmdir {
                        path: path.to_string(),
                    },
                    None,
                    None,
                    now,
                );
            }
            OpEvent::Close { path } => self.on_close(path.as_str(), fs, now),
            OpEvent::Fsync { .. } => {}
        }
    }

    fn on_create(&mut self, path: &str, now: SimTime) {
        if let Some(pre) = (self.cfg.causal_mode != CausalMode::StrictFifo)
            .then(|| self.relation.take_match(path, now))
            .flatten()
        {
            // Delete-then-rewrite (or similar) pattern: remember the old
            // version; the delta runs when the new content is complete.
            self.obs
                .tracer
                .event(now.as_millis(), &self.actor, "relation.trigger", || {
                    format!("delete-then-rewrite matched on {path}; delta deferred to close")
                });
            self.mark_relation(path, now);
            self.pending_delta.insert(path.to_string(), pre);
        }
        self.sizes.insert(path.to_string(), 0);
        let version = self.next_version();
        self.queue.push(
            NodeKind::Create {
                path: path.to_string(),
            },
            self.versions.get(path).copied(),
            Some(version),
            now,
        );
        self.versions.insert(path.to_string(), version);
    }

    fn on_write(
        &mut self,
        path: &str,
        offset: u64,
        data: &Bytes,
        overwritten: &Bytes,
        fs: &Vfs,
        now: SimTime,
    ) {
        let old_len = self.sizes.get(path).copied().unwrap_or(0);
        let new_len = old_len.max(offset + data.len() as u64);
        self.sizes.insert(path.to_string(), new_len);
        self.relation.invalidate_dst(path);

        // Interception itself costs one copy of the written data.
        self.cost.bytes_copied += data.len() as u64;

        if self.cfg.checksums
            && !self.verify_and_update_checksums(path, offset, data, overwritten, old_len, fs)
        {
            // Corruption detected: refuse to propagate this file.
            self.quarantined.insert(path.to_string());
        }
        if self.quarantined.contains(path) {
            return;
        }

        // Undo log: preserve the overwritten bytes (paper §III-A).
        self.note_undo_base(path);
        self.undo.entry(path.to_string()).or_default().record_write(
            old_len,
            offset,
            overwritten.clone(),
            data.len() as u64,
        );

        let op = FileOpItem::Write {
            offset,
            data: Payload::from(data.clone()),
        };
        if self.queue.append_write(path, op.clone(), now).is_none() {
            let base = self.versions.get(path).copied();
            let version = self.next_version();
            self.queue.push(
                NodeKind::Write {
                    path: path.to_string(),
                    ops: vec![op],
                    packed: false,
                },
                base,
                Some(version),
                now,
            );
            self.versions.insert(path.to_string(), version);
        }
    }

    /// Verifies the blocks a write touches *before* recording their new
    /// checksums. Returns `false` if the pre-write content did not match
    /// the stored checksums — i.e. something modified the file underneath
    /// the interception layer.
    fn verify_and_update_checksums(
        &mut self,
        path: &str,
        offset: u64,
        data: &Bytes,
        overwritten: &Bytes,
        old_len: u64,
        fs: &Vfs,
    ) -> bool {
        let Some(cs) = &mut self.checksums else {
            return true;
        };
        let bs = cs.block_size() as u64;
        if data.is_empty() {
            return true;
        }
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let mut bad_blocks = Vec::new();
        for idx in first..=last {
            let block_start = idx * bs;
            // Current (post-write) block content.
            let block = fs
                .peek_range(path, block_start, bs as usize)
                .unwrap_or_default();
            self.cost.bytes_engine_read += block.len() as u64;
            // Reconstruct the pre-write block by splicing the overwritten
            // bytes back over the written range.
            let pre = reconstruct_pre_block(&block, block_start, offset, overwritten, old_len);
            if let Some(pre) = pre {
                match cs.verify_block(path, idx, &pre, &mut self.cost) {
                    Ok(true) | Err(_) => {}
                    Ok(false) => bad_blocks.push(idx),
                }
            }
            cs.put_block(path, idx, &block, &mut self.cost).ok();
        }
        if bad_blocks.is_empty() {
            true
        } else {
            self.issues.push(IntegrityIssue {
                path: path.to_string(),
                blocks: bad_blocks,
                kind: IssueKind::Corruption,
            });
            false
        }
    }

    fn on_truncate(&mut self, path: &str, size: u64, cut: &Bytes, fs: &Vfs, now: SimTime) {
        let old_len = self.sizes.get(path).copied().unwrap_or(0);
        self.sizes.insert(path.to_string(), size);
        self.relation.invalidate_dst(path);
        if let Some(cs) = &mut self.checksums {
            let bs = cs.block_size() as u64;
            let last_block = if size > 0 {
                let start = (size - 1) / bs * bs;
                let block = fs.peek_range(path, start, bs as usize).unwrap_or_default();
                self.cost.bytes_engine_read += block.len() as u64;
                Some(block)
            } else {
                None
            };
            cs.truncate(path, size, last_block.as_deref(), &mut self.cost)
                .ok();
        }
        if self.quarantined.contains(path) {
            return;
        }
        self.note_undo_base(path);
        self.undo
            .entry(path.to_string())
            .or_default()
            .record_truncate(old_len, size, cut.clone());
        let op = FileOpItem::Truncate { size };
        if self.queue.append_write(path, op.clone(), now).is_none() {
            let base = self.versions.get(path).copied();
            let version = self.next_version();
            self.queue.push(
                NodeKind::Write {
                    path: path.to_string(),
                    ops: vec![op],
                    packed: false,
                },
                base,
                Some(version),
                now,
            );
            self.versions.insert(path.to_string(), version);
        }
    }

    fn rekey(&mut self, src: &str, dst: &str) {
        if let Some(v) = self.versions.remove(src) {
            self.versions.insert(dst.to_string(), v);
        }
        if let Some(s) = self.sizes.remove(src) {
            self.sizes.insert(dst.to_string(), s);
        }
        if let Some(u) = self.undo.remove(src) {
            self.undo.insert(dst.to_string(), u);
        }
        if let Some(v) = self.undo_base.remove(src) {
            self.undo_base.insert(dst.to_string(), v);
        }
        if let Some(p) = self.pending_delta.remove(src) {
            self.pending_delta.insert(dst.to_string(), p);
        }
        if self.quarantined.remove(src) {
            self.quarantined.insert(dst.to_string());
        }
        if let Some(cs) = &mut self.checksums {
            cs.rename(src, dst).ok();
        }
    }

    fn on_rename(&mut self, src: &str, dst: &str, replaced: Option<Bytes>, fs: &Vfs, now: SimTime) {
        // Capture the replaced file's version before any rekeying.
        let replaced_version = self.versions.get(dst).copied();
        self.queue.pack(src);
        self.queue.pack(dst);
        self.rekey(src, dst);
        // The rename itself preserves src's old *name* relation.
        self.relation.on_rename(src, dst, now);

        // Trigger check: did this rename recreate a name whose old version
        // is preserved (Word), or overwrite an existing file (gedit)?
        // Strict-FIFO mode (ablation) never triggers: the rename ships
        // as-is and the temp file's full content ships as RPC ops.
        if self.cfg.causal_mode == CausalMode::StrictFifo {
            self.queue.push(
                NodeKind::Rename {
                    src: src.to_string(),
                    dst: dst.to_string(),
                },
                None,
                None,
                now,
            );
        } else if let Some(pre) = self.relation.take_match(dst, now) {
            self.obs
                .tracer
                .event(now.as_millis(), &self.actor, "relation.trigger", || {
                    format!("rename-recreate (word pattern) matched on {dst}")
                });
            self.mark_relation(dst, now);
            self.execute_delta(dst, pre, Some(src), fs, now);
        } else if let Some(old_content) = replaced {
            self.obs
                .tracer
                .event(now.as_millis(), &self.actor, "relation.trigger", || {
                    format!("rename-over-existing (gedit pattern) matched on {dst}")
                });
            self.mark_relation(dst, now);
            let pre = Preserved {
                old: OldVersion::Content(old_content),
                base_version: replaced_version,
            };
            self.execute_delta(dst, pre, Some(src), fs, now);
        } else {
            self.queue.push(
                NodeKind::Rename {
                    src: src.to_string(),
                    dst: dst.to_string(),
                },
                None,
                None,
                now,
            );
        }
    }

    fn on_link(&mut self, src: &str, dst: &str, now: SimTime) {
        // No relation entry for link (paper Table I): the rename-over that
        // follows triggers via the "name already exists" rule.
        if let Some(v) = self.versions.get(src).copied() {
            self.versions.insert(dst.to_string(), v);
        }
        if let Some(s) = self.sizes.get(src).copied() {
            self.sizes.insert(dst.to_string(), s);
        }
        self.queue.push(
            NodeKind::Link {
                src: src.to_string(),
                dst: dst.to_string(),
            },
            None,
            None,
            now,
        );
    }

    fn on_unlink(&mut self, path: &str, removed: Option<Bytes>, now: SimTime) {
        self.queue.pack(path);
        self.relation.invalidate_dst(path);
        let base_version = self.versions.get(path).copied();
        if let Some(content) = removed {
            if (content.len() as u64) <= self.cfg.preserve_limit {
                // Preserve the dying content (the paper's tmp/ move).
                self.relation.on_unlink(path, content, base_version, now);
            }
        }
        if self.cfg.causal_mode != CausalMode::StrictFifo && self.queue.has_pending_create(path) {
            // The cloud has never seen this file: elide every pending node
            // instead of uploading a create/write/unlink sequence. The
            // backindex pins causality to the current tail.
            let ids = self.queue.pending_ids_for_path(path);
            if let Some(tail) = self.queue.tail_id() {
                self.queue.delete_nodes(&ids, tail);
            }
        } else {
            self.queue.push(
                NodeKind::Unlink {
                    path: path.to_string(),
                },
                base_version,
                None,
                now,
            );
        }
        self.versions.remove(path);
        self.sizes.remove(path);
        self.clear_undo(path);
        self.pending_delta.remove(path);
        self.quarantined.remove(path);
        if let Some(cs) = &mut self.checksums {
            cs.remove(path).ok();
        }
    }

    fn on_close(&mut self, path: &str, fs: &Vfs, now: SimTime) {
        self.queue.pack(path);
        if let Some(pre) = self.pending_delta.remove(path) {
            self.obs
                .tracer
                .event(now.as_millis(), &self.actor, "relation.trigger", || {
                    format!("close fired deferred delta on {path}")
                });
            self.mark_relation(path, now);
            self.execute_delta(path, pre, None, fs, now);
        }
    }

    /// Runs the paper's local delta encoding for `path` against the
    /// preserved old version and splices the result into the sync queue,
    /// superseding the pending RPC nodes.
    fn execute_delta(
        &mut self,
        path: &str,
        pre: Preserved,
        src_hint: Option<&str>,
        fs: &Vfs,
        now: SimTime,
    ) {
        let new_content = self.peek(fs, path);
        let old_via_path = matches!(pre.old, OldVersion::Path(_));
        let (old_content, base_path, base_version): (Vec<u8>, String, Option<Version>) =
            match pre.old {
                OldVersion::Path(p) => {
                    let content = self.peek(fs, &p);
                    let version = self.versions.get(&p).copied();
                    (content, p, version)
                }
                OldVersion::Content(bytes) => (bytes.to_vec(), path.to_string(), pre.base_version),
            };

        // Nodes this delta supersedes: the file's own pending content
        // history (including a pending unlink in the delete-then-recreate
        // pattern — the cloud's copy stays and serves as the delta base)
        // and the content assembled under the temporary source name.
        let mut ids = self.queue.pending_content_ids(path, true);
        if let Some(src) = src_hint {
            let src_ids = self.queue.pending_content_ids(src, false);
            if src_ids.is_empty() {
                // The temp file's content already reached the cloud (its
                // nodes uploaded before the trigger — e.g. a snapshot
                // sealed mid-save). Clean the stray copy up explicitly;
                // unlinking a path the cloud never had is harmless.
                self.queue.push(
                    NodeKind::Unlink {
                        path: src.to_string(),
                    },
                    None,
                    None,
                    now,
                );
            }
            ids.extend(src_ids);
        }

        let params = self.delta_params();
        self.obs
            .tracer
            .enter(now.as_millis(), &self.actor, "delta.encode", || {
                format!(
                    "{path}: {} -> {} bytes, base {base_path}",
                    old_content.len(),
                    new_content.len()
                )
            });
        // Per-worker-segment events come from the *same* split the scan
        // phase uses; emitted here on the engine thread so the trace stays
        // deterministic regardless of worker scheduling.
        for (i, (start, end)) in
            segment_bounds(new_content.len(), self.cfg.block_size, self.cfg.parallelism)
                .into_iter()
                .enumerate()
        {
            self.obs
                .tracer
                .event(now.as_millis(), &self.actor, "delta.segment", || {
                    format!("worker {i}: window positions {start}..{end}")
                });
        }
        let delta = local::diff_parallel(
            &old_content,
            &new_content,
            &params,
            self.cfg.parallelism,
            &mut self.cost,
        );
        let hstats = self.absorb_hierarchy_stats();
        if hstats.engaged() {
            self.obs
                .tracer
                .event(now.as_millis(), &self.actor, "delta.hierarchy", || {
                    format!(
                        "{path}: {} span(s) matched wholesale, {} bytes skipped, {} leaf-walked",
                        hstats.levels_matched(),
                        hstats.bytes_skipped,
                        hstats.leaf_walk_bytes
                    )
                });
        }
        if self.obs.spans.enabled() {
            // Encode CPU never advances the simulated clock, so the
            // span is zero-width at `now`; the streaming bench path
            // (Pace::Measured) is where encode time becomes visible.
            let marks = self.span_marks.entry(path.to_string()).or_default();
            marks.encode = Some((now.as_millis(), now.as_millis()));
            if hstats.engaged() {
                marks.hierarchy_ms = Some(now.as_millis());
            }
        }
        let chose_delta = delta.wire_size() < new_content.len() as u64;
        self.obs
            .tracer
            .exit(now.as_millis(), &self.actor, "delta.encode", || {
                if chose_delta {
                    format!("delta wins: {} wire bytes", delta.wire_size())
                } else {
                    format!(
                        "full-content fallback: delta {} >= file {}",
                        delta.wire_size(),
                        new_content.len()
                    )
                }
            });
        // What the cloud will hold at `path` when a full-content node
        // lands there. The paper's per-RPC interception never uploads
        // mid-save, but a driver that pumps between batched operations
        // can ship part of the save (say, the temp file's create) before
        // the trigger fires — then "the old version was renamed away"
        // no longer implies "the cloud has nothing at this name", and a
        // `base: None` full would bounce off its own create as a version
        // conflict. The pending chain's bottom is the cloud's copy; with
        // nothing pending and no rename in flight for the name, the
        // version map points straight at it.
        let cloud_base = match self.queue.pending_chain_base(path) {
            Some(chain_bottom) => chain_bottom,
            None if self.queue.pending_rename_touching(path) => None,
            None => self.versions.get(path).copied(),
        };
        let version = self.next_version();
        let node_id = if chose_delta {
            self.queue.push(
                NodeKind::Delta {
                    path: path.to_string(),
                    base_path,
                    delta,
                },
                base_version,
                Some(version),
                now,
            )
        } else {
            // The files are too different (or too small) for delta
            // encoding to pay off: ship the whole content. The base must
            // reflect what the cloud holds at `path` when this applies:
            // nothing, if the old version was renamed away (Word's t0);
            // the preserved version, if the content survives in place
            // (gedit's replaced rename, unlink-then-recreate).
            self.cost.bytes_copied += new_content.len() as u64;
            let full_base = if old_via_path { cloud_base } else { base_version };
            self.queue.push(
                NodeKind::Full {
                    path: path.to_string(),
                    data: Payload::from(new_content),
                },
                full_base,
                Some(version),
                now,
            )
        };
        self.versions.insert(path.to_string(), version);
        if !ids.is_empty() {
            self.queue.delete_nodes(&ids, node_id);
        }
        // The RPC history no longer matters for this file.
        self.clear_undo(path);
    }

    /// Advances timeouts and returns the transaction groups that are ready
    /// to upload.
    pub fn tick(&mut self, fs: &Vfs) -> Vec<Vec<UpdateMsg>> {
        let now = self.clock.now();
        self.relation.expire(now);
        if let CausalMode::Snapshot { interval_ms } = self.cfg.causal_mode {
            // ViewBox-style: seal the entire queue every interval and
            // upload it as one transaction (paper §III-E's rejected
            // alternative). Nothing leaves between snapshots.
            if now.since(self.last_snapshot) < interval_ms {
                return Vec::new();
            }
            self.last_snapshot = now;
            let groups = self.queue.pop_all();
            let merged: Vec<crate::sync_queue::Node> = groups.into_iter().flatten().collect();
            if merged.is_empty() {
                return Vec::new();
            }
            return self.convert_groups(vec![merged], fs);
        }
        let groups = self.queue.pop_ready(now);
        self.convert_groups(groups, fs)
    }

    /// Flushes everything still queued (end of run / shutdown).
    pub fn flush(&mut self, fs: &Vfs) -> Vec<Vec<UpdateMsg>> {
        let groups = self.queue.pop_all();
        self.convert_groups(groups, fs)
    }

    fn convert_groups(
        &mut self,
        groups: Vec<Vec<crate::sync_queue::Node>>,
        fs: &Vfs,
    ) -> Vec<Vec<UpdateMsg>> {
        let mut out = Vec::with_capacity(groups.len());
        for group in groups {
            let mut msgs = Vec::new();
            for node in &group {
                if node.deleted {
                    continue;
                }
                if let Some(msg) = self.node_to_msg(node, fs) {
                    msgs.push(msg);
                }
            }
            if msgs.len() > 1 {
                let txn = self.next_txn;
                self.next_txn += 1;
                for m in &mut msgs {
                    m.txn = Some(txn);
                }
            }
            if !msgs.is_empty() {
                self.group_counter += 1;
                let gid = GroupId {
                    client: self.id,
                    seq: self.group_counter,
                };
                for m in &mut msgs {
                    m.group = Some(gid);
                }
                let now_ms = self.clock.now().as_millis();
                self.obs
                    .tracer
                    .event(now_ms, &self.actor, "sync.group", || {
                        let wire: u64 = msgs.iter().map(UpdateMsg::wire_size).sum();
                        format!(
                            "group seq {} packed: {} msgs, {} wire bytes",
                            gid.seq,
                            msgs.len(),
                            wire
                        )
                    });
                if self.obs.spans.enabled() {
                    // The group's root span: first VFS write entering
                    // the queue through pack time — the NFS-style
                    // upload-delay dwell. Everything downstream (the
                    // server side included) parents under this root via
                    // the group key riding the wire headers.
                    let origin_ms = group
                        .iter()
                        .filter(|n| !n.deleted)
                        .map(|n| n.enqueued_at.as_millis())
                        .min()
                        .unwrap_or(now_ms);
                    let key = gid.span_key();
                    let root = self.obs.spans.record(
                        key,
                        &self.actor,
                        "vfs.write",
                        origin_ms,
                        now_ms,
                        None,
                        || {
                            format!(
                                "{} msg(s) packed after {}ms queue dwell",
                                msgs.len(),
                                now_ms - origin_ms
                            )
                        },
                    );
                    for m in &msgs {
                        let Some(marks) = self.span_marks.remove(&m.path) else {
                            continue;
                        };
                        if let Some(t) = marks.relation_ms {
                            self.obs.spans.record(
                                key,
                                &self.actor,
                                "relation.trigger",
                                t,
                                t,
                                Some(root),
                                || m.path.clone(),
                            );
                        }
                        if let Some(t) = marks.hierarchy_ms {
                            // Recorded before delta.encode so the
                            // coarse→fine pass shows up ahead of the walk
                            // it accelerates in the stage ordering.
                            self.obs.spans.record(
                                key,
                                &self.actor,
                                "delta.hierarchy",
                                t,
                                t,
                                Some(root),
                                || m.path.clone(),
                            );
                        }
                        if let Some((s, e)) = marks.encode {
                            self.obs.spans.record(
                                key,
                                &self.actor,
                                "delta.encode",
                                s,
                                e,
                                Some(root),
                                || m.path.clone(),
                            );
                        }
                    }
                }
                out.push(msgs);
            }
        }
        out
    }

    fn node_to_msg(&mut self, node: &crate::sync_queue::Node, fs: &Vfs) -> Option<UpdateMsg> {
        let payload = match &node.kind {
            NodeKind::Create { .. } => UpdatePayload::Create,
            NodeKind::Write { path, ops, .. } => self.write_node_payload(path, ops, node.base, fs),
            NodeKind::Delta {
                base_path, delta, ..
            } => UpdatePayload::Delta {
                base_path: base_path.clone(),
                delta: delta.clone(),
            },
            NodeKind::Full { data, .. } => UpdatePayload::Full(data.clone()),
            NodeKind::Rename { dst, .. } => UpdatePayload::Rename { to: dst.clone() },
            NodeKind::Link { dst, .. } => UpdatePayload::Link { to: dst.clone() },
            NodeKind::Unlink { .. } => UpdatePayload::Unlink,
            NodeKind::Mkdir { .. } => UpdatePayload::Mkdir,
            NodeKind::Rmdir { .. } => UpdatePayload::Rmdir,
        };
        Some(UpdateMsg {
            path: node.kind.path().to_string(),
            base: node.base,
            version: node.version,
            payload,
            txn: None,
            group: None, // stamped per-group by convert_groups
        })
    }

    /// Decides between shipping raw ops and delta-compressing a large
    /// in-place update via the undo log (paper §III-A).
    fn write_node_payload(
        &mut self,
        path: &str,
        ops: &[FileOpItem],
        base: Option<Version>,
        fs: &Vfs,
    ) -> UpdatePayload {
        let raw_size: u64 = ops
            .iter()
            .map(|op| crate::protocol::OP_ITEM_HEADER_BYTES + op.payload_len())
            .sum();
        let current_len = self.sizes.get(path).copied().unwrap_or(0);
        // Delta compression only makes sense against a base version the
        // cloud already holds; fresh files always ship their raw writes.
        let try_delta = base.is_some()
            && self
                .undo
                .get(path)
                .map(|u| {
                    !u.is_empty()
                        && u.initial_len() > 0
                        && u.changed_fraction(current_len) > self.cfg.inplace_delta_threshold
                        // Only safe when no other pending node interleaves
                        // with this file's history.
                        && self.queue.pending_ids_for_path(path).is_empty()
                })
                .unwrap_or(false);
        if try_delta {
            let current = self.peek(fs, path);
            let undo = self.undo.get(path).expect("checked above");
            let old = undo.reconstruct(&current);
            self.cost.bytes_copied += old.len() as u64;
            let params = self.delta_params();
            let delta =
                local::diff_parallel(&old, &current, &params, self.cfg.parallelism, &mut self.cost);
            self.absorb_hierarchy_stats();
            self.clear_undo(path);
            if delta.wire_size() < raw_size {
                return UpdatePayload::Delta {
                    base_path: path.to_string(),
                    delta,
                };
            }
        } else {
            self.clear_undo(path);
        }
        UpdatePayload::Ops(ops.to_vec())
    }

    /// Applies a remote (forwarded) update to the local file system.
    ///
    /// If this client has its own pending changes for the file, the local
    /// content is preserved as a conflict copy first (the cloud's version
    /// won — first write wins).
    pub fn apply_remote(&mut self, msg: &UpdateMsg, fs: &mut Vfs) -> Option<RemoteConflict> {
        let mut conflict = None;
        let pending = self.queue.pending_ids_for_path(&msg.path);
        let content_change = matches!(
            msg.payload,
            UpdatePayload::Ops(_) | UpdatePayload::Delta { .. } | UpdatePayload::Full(_)
        );
        if !pending.is_empty() && content_change {
            let local_copy = format!("{}.conflict-{}", msg.path, self.id);
            let local_content = self.peek(fs, &msg.path);
            fs.create(&local_copy).ok();
            fs.write(&local_copy, 0, &local_content).ok();
            // Drop our losing pending nodes.
            if let Some(tail) = self.queue.tail_id() {
                self.queue.delete_nodes(&pending, tail);
            }
            conflict = Some(RemoteConflict {
                path: msg.path.clone(),
                local_copy,
            });
        }
        self.apply_remote_payload(msg, fs);
        // Discard the events our own application just generated.
        let _ = fs.drain_events();
        if let Some(v) = msg.version {
            self.versions.insert(msg.path.clone(), v);
        }
        if content_change {
            if let Some(cs) = &mut self.checksums {
                let content = fs.peek_all(&msg.path).unwrap_or_default();
                self.cost.bytes_engine_read += content.len() as u64;
                cs.reindex_file(&msg.path, &content, &mut self.cost).ok();
            }
            self.sizes.insert(
                msg.path.clone(),
                fs.metadata(&msg.path).map(|m| m.size).unwrap_or(0),
            );
        }
        conflict
    }

    fn apply_remote_payload(&mut self, msg: &UpdateMsg, fs: &mut Vfs) {
        match &msg.payload {
            UpdatePayload::Create => {
                fs.create(&msg.path).ok();
            }
            UpdatePayload::Ops(ops) => {
                if !fs.exists(&msg.path) {
                    fs.create(&msg.path).ok();
                }
                for op in ops {
                    match op {
                        FileOpItem::Write { offset, data } => {
                            fs.write(&msg.path, *offset, data).ok();
                        }
                        FileOpItem::Truncate { size } => {
                            fs.truncate(&msg.path, *size).ok();
                        }
                    }
                }
            }
            UpdatePayload::Delta { base_path, delta } => {
                let base = fs.peek_all(base_path).unwrap_or_default();
                self.cost.bytes_engine_read += base.len() as u64;
                if let Ok(new_content) = delta.apply(&base) {
                    if !fs.exists(&msg.path) {
                        fs.create(&msg.path).ok();
                    }
                    fs.truncate(&msg.path, 0).ok();
                    fs.write(&msg.path, 0, &new_content).ok();
                }
            }
            UpdatePayload::Full(data) => {
                if !fs.exists(&msg.path) {
                    fs.create(&msg.path).ok();
                }
                fs.truncate(&msg.path, 0).ok();
                fs.write(&msg.path, 0, data).ok();
            }
            UpdatePayload::Rename { to } => {
                fs.rename(&msg.path, to).ok();
                self.rekey(&msg.path, to);
            }
            UpdatePayload::Link { to } => {
                fs.link(&msg.path, to).ok();
            }
            UpdatePayload::Unlink => {
                fs.unlink(&msg.path).ok();
                self.versions.remove(&msg.path);
                self.sizes.remove(&msg.path);
            }
            UpdatePayload::Mkdir => {
                fs.mkdir_all(&msg.path).ok();
            }
            UpdatePayload::Rmdir => {
                fs.rmdir(&msg.path).ok();
            }
        }
    }

    /// Verified read (paper §III-E: "When a file is read, the data blocks
    /// will be verified using the checksums"). Returns the requested
    /// range, or the detected [`IntegrityIssue`] if any covering block
    /// fails verification — in which case the file is quarantined and
    /// should be recovered from the cloud via
    /// [`DeltaCfsClient::recover_file`].
    ///
    /// # Errors
    ///
    /// Returns the [`IntegrityIssue`] describing the corrupted blocks.
    pub fn verified_read(
        &mut self,
        path: &str,
        offset: u64,
        len: usize,
        fs: &Vfs,
    ) -> Result<Vec<u8>, IntegrityIssue> {
        let data = fs.peek_range(path, offset, len).unwrap_or_default();
        self.cost.bytes_engine_read += data.len() as u64;
        let Some(cs) = &mut self.checksums else {
            return Ok(data);
        };
        if data.is_empty() {
            return Ok(data);
        }
        let bs = cs.block_size() as u64;
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let mut bad = Vec::new();
        for idx in first..=last {
            let block = fs
                .peek_range(path, idx * bs, bs as usize)
                .unwrap_or_default();
            self.cost.bytes_engine_read += block.len() as u64;
            if let Ok(false) = cs.verify_block(path, idx, &block, &mut self.cost) {
                bad.push(idx);
            }
        }
        if bad.is_empty() {
            Ok(data)
        } else {
            let issue = IntegrityIssue {
                path: path.to_string(),
                blocks: bad,
                kind: IssueKind::Corruption,
            };
            self.quarantined.insert(path.to_string());
            self.issues.push(issue.clone());
            Err(issue)
        }
    }

    /// Post-crash scan (paper §III-E): verifies `paths` (the recently
    /// modified files) against the checksum store and reports files whose
    /// blocks disagree — these are in a crash-inconsistent state and must
    /// not be uploaded; the correct version should be pulled from the
    /// cloud instead.
    pub fn crash_recovery_scan(&mut self, paths: &[String], fs: &Vfs) -> Vec<IntegrityIssue> {
        let mut found = Vec::new();
        for path in paths {
            let content = fs.peek_all(path).unwrap_or_default();
            self.cost.bytes_engine_read += content.len() as u64;
            let Some(cs) = &mut self.checksums else {
                continue;
            };
            if let Ok(bad) = cs.verify_file(path, &content, &mut self.cost) {
                if !bad.is_empty() {
                    let issue = IntegrityIssue {
                        path: path.clone(),
                        blocks: bad,
                        kind: IssueKind::CrashInconsistency,
                    };
                    self.quarantined.insert(path.clone());
                    self.issues.push(issue.clone());
                    found.push(issue);
                }
            }
        }
        found
    }

    /// Replaces a quarantined file's local content with `good` (pulled
    /// from the cloud) and lifts the quarantine.
    pub fn recover_file(&mut self, path: &str, good: &[u8], fs: &mut Vfs) {
        if !fs.exists(path) {
            fs.create(path).ok();
        }
        fs.truncate(path, 0).ok();
        fs.write(path, 0, good).ok();
        let _ = fs.drain_events();
        if let Some(cs) = &mut self.checksums {
            cs.reindex_file(path, good, &mut self.cost).ok();
        }
        self.sizes.insert(path.to_string(), good.len() as u64);
        self.quarantined.remove(path);
    }

    /// Whether `path` is currently quarantined (detected fault, awaiting
    /// recovery).
    pub fn is_quarantined(&self, path: &str) -> bool {
        self.quarantined.contains(path)
    }

    /// Rebuilds the sync queue after a client crash by replaying the undo
    /// log (the paper's durable per-file journal of overwritten bytes).
    ///
    /// The sync queue, relation table, and in-flight retransmissions are
    /// volatile — a crash loses them — but the local files and their undo
    /// logs survive. For every file with an open undo batch this
    /// re-derives the update the lost queue would have shipped:
    ///
    /// * if the cloud still holds exactly the version the batch started
    ///   from (`cloud_version` reports the server's current version per
    ///   path), the old content is reconstructed from the undo log and a
    ///   **delta** is queued against it;
    /// * otherwise (cloud advanced past us, or never saw the file) the
    ///   current content ships **whole**, based on whatever the cloud
    ///   holds, so server-side validation accepts it.
    ///
    /// The version counter is *not* reset: versions assigned before the
    /// crash may still sit in the server's idempotency index, and reusing
    /// them would make fresh updates look like retransmissions.
    ///
    /// Returns the paths that were re-queued.
    pub fn restart_from_undo_log<F>(&mut self, fs: &Vfs, cloud_version: F) -> Vec<String>
    where
        F: Fn(&str) -> Option<Version>,
    {
        let now = self.clock.now();
        // Volatile state died with the process.
        self.queue = SyncQueue::new(self.cfg.upload_delay_ms);
        self.relation = RelationTable::new(self.cfg.relation_timeout_ms);
        self.pending_delta.clear();

        let mut paths: Vec<String> = self.undo.keys().cloned().collect();
        paths.sort();
        let mut replayed = Vec::new();
        for path in paths {
            if !fs.exists(&path) {
                self.clear_undo(&path);
                continue;
            }
            let (log_empty, initial_len) = {
                let log = &self.undo[&path];
                (log.is_empty(), log.initial_len())
            };
            if log_empty {
                self.clear_undo(&path);
                continue;
            }
            let current = self.peek(fs, &path);
            let cloud = cloud_version(&path);
            let base_matches =
                cloud.is_some() && cloud == self.undo_base.get(path.as_str()).copied();
            let version = self.next_version();
            let mut pushed_delta = false;
            if base_matches && initial_len > 0 {
                let old = self.undo[&path].reconstruct(&current);
                self.cost.bytes_copied += old.len() as u64;
                let params = self.delta_params();
                let delta = local::diff_parallel(
                    &old,
                    &current,
                    &params,
                    self.cfg.parallelism,
                    &mut self.cost,
                );
                self.absorb_hierarchy_stats();
                if delta.wire_size() < current.len() as u64 {
                    self.queue.push(
                        NodeKind::Delta {
                            path: path.clone(),
                            base_path: path.clone(),
                            delta,
                        },
                        cloud,
                        Some(version),
                        now,
                    );
                    pushed_delta = true;
                }
            }
            if !pushed_delta {
                self.cost.bytes_copied += current.len() as u64;
                self.queue.push(
                    NodeKind::Full {
                        path: path.clone(),
                        data: Payload::from(current.clone()),
                    },
                    cloud,
                    Some(version),
                    now,
                );
            }
            self.versions.insert(path.clone(), version);
            self.sizes.insert(path.clone(), current.len() as u64);
            self.clear_undo(&path);
            replayed.push(path);
        }
        replayed
    }
}

/// Compact one-line rendering of an intercepted operation for the trace.
fn op_summary(event: &OpEvent) -> String {
    match event {
        OpEvent::Create { path } => format!("create {path}"),
        OpEvent::Write {
            path, offset, data, ..
        } => format!("write {path} @{offset} +{}B", data.len()),
        OpEvent::Truncate { path, size, .. } => format!("truncate {path} to {size}B"),
        OpEvent::Rename { src, dst, replaced } => {
            if replaced.is_some() {
                format!("rename {src} -> {dst} (replaces existing)")
            } else {
                format!("rename {src} -> {dst}")
            }
        }
        OpEvent::Link { src, dst } => format!("link {src} -> {dst}"),
        OpEvent::Unlink { path, .. } => format!("unlink {path}"),
        OpEvent::Mkdir { path } => format!("mkdir {path}"),
        OpEvent::Rmdir { path } => format!("rmdir {path}"),
        OpEvent::Close { path } => format!("close {path}"),
        OpEvent::Fsync { path } => format!("fsync {path}"),
    }
}

/// Reconstructs the pre-write content of one block.
///
/// `block` is the post-write block content starting at file offset
/// `block_start`; the write started at `write_off` and destroyed
/// `overwritten` (shorter than the write when the file grew); the file
/// was `old_len` bytes long before the write. Returns `None` when the
/// block lay entirely beyond the old file end (nothing to verify).
fn reconstruct_pre_block(
    block: &[u8],
    block_start: u64,
    write_off: u64,
    overwritten: &Bytes,
    old_len: u64,
) -> Option<Vec<u8>> {
    if block_start >= old_len {
        return None; // this block did not exist before the write
    }
    // The old block ends at the old file end (a growing write zero-fills
    // past it; those zeros are new content, not old).
    let mut pre = block.to_vec();
    pre.truncate((old_len - block_start) as usize);
    // Splice the overwritten bytes back over the written range.
    let splice_start = write_off.max(block_start);
    let splice_end = (write_off + overwritten.len() as u64).min(block_start + pre.len() as u64);
    for pos in splice_start..splice_end {
        pre[(pos - block_start) as usize] = overwritten[(pos - write_off) as usize];
    }
    Some(pre)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DeltaCfsClient, Vfs, SimClock) {
        let clock = SimClock::new();
        let client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        (client, fs, clock)
    }

    fn pump(client: &mut DeltaCfsClient, fs: &mut Vfs) {
        for e in fs.drain_events() {
            client.handle_event(&e, fs);
        }
    }

    #[test]
    fn writes_become_rpc_ops() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"hello").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let groups = client.tick(&fs);
        let msgs: Vec<_> = groups.into_iter().flatten().collect();
        assert_eq!(msgs.len(), 2); // create + ops
        assert!(matches!(msgs[0].payload, UpdatePayload::Create));
        match &msgs[1].payload {
            UpdatePayload::Ops(ops) => assert_eq!(ops.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        // No delta machinery ran.
        assert_eq!(client.cost().bytes_strong_hashed, 0);
    }

    #[test]
    fn word_pattern_collapses_to_one_delta() {
        let (mut client, mut fs, clock) = setup();
        // Initial file, uploaded.
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![7u8; 40_000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let initial = client.tick(&fs);
        assert!(!initial.is_empty());

        // Transactional save: rename f t0; create t1; write t1; rename
        // t1 f; unlink t0 — all within one second.
        let mut new_content = vec![7u8; 40_000];
        new_content[100..140].copy_from_slice(&[9u8; 40]);
        fs.rename("/f", "/t0").unwrap();
        pump(&mut client, &mut fs);
        fs.create("/t1").unwrap();
        pump(&mut client, &mut fs);
        fs.write("/t1", 0, &new_content).unwrap();
        pump(&mut client, &mut fs);
        fs.close_path("/t1").unwrap();
        pump(&mut client, &mut fs);
        fs.rename("/t1", "/f").unwrap();
        pump(&mut client, &mut fs);
        fs.unlink("/t0").unwrap();
        pump(&mut client, &mut fs);

        clock.advance(4000);
        let groups = client.tick(&fs);
        let msgs: Vec<_> = groups.into_iter().flatten().collect();
        // Expected surviving messages: rename f→t0, delta on f, unlink t0.
        let kinds: Vec<&'static str> = msgs
            .iter()
            .map(|m| match &m.payload {
                UpdatePayload::Rename { .. } => "rename",
                UpdatePayload::Delta { .. } => "delta",
                UpdatePayload::Unlink => "unlink",
                UpdatePayload::Ops(_) => "ops",
                UpdatePayload::Create => "create",
                UpdatePayload::Full(_) => "full",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["rename", "delta", "unlink"], "got {msgs:?}");
        // The delta is small: far below the 40 KB file.
        let delta_size: u64 = msgs
            .iter()
            .map(|m| match &m.payload {
                UpdatePayload::Delta { delta, .. } => delta.wire_size(),
                _ => 0,
            })
            .sum();
        assert!(delta_size < 6000, "delta too large: {delta_size}");
        // And no strong checksums were computed (bitwise comparison).
        assert_eq!(client.cost().bytes_strong_hashed, 0);
    }

    #[test]
    fn word_delta_applies_correctly_on_server() {
        use crate::server::CloudServer;
        let (mut client, mut fs, clock) = setup();
        let mut server = CloudServer::new();
        let sync = |client: &mut DeltaCfsClient, fs: &Vfs, server: &mut CloudServer| {
            for group in client.tick(fs) {
                server.apply_txn(&group);
            }
        };
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![1u8; 20_000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        sync(&mut client, &fs, &mut server);
        assert_eq!(server.file("/f"), Some(&vec![1u8; 20_000][..]));

        let mut new_content = vec![1u8; 20_000];
        new_content.extend_from_slice(&[2u8; 500]);
        fs.rename("/f", "/t0").unwrap();
        pump(&mut client, &mut fs);
        fs.create("/t1").unwrap();
        pump(&mut client, &mut fs);
        fs.write("/t1", 0, &new_content).unwrap();
        pump(&mut client, &mut fs);
        fs.close_path("/t1").unwrap();
        pump(&mut client, &mut fs);
        fs.rename("/t1", "/f").unwrap();
        pump(&mut client, &mut fs);
        fs.unlink("/t0").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        sync(&mut client, &fs, &mut server);
        assert_eq!(server.file("/f"), Some(&new_content[..]));
        assert!(server.file("/t0").is_none());
        assert!(server.file("/t1").is_none());
    }

    #[test]
    fn gedit_pattern_triggers_on_replacement() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![5u8; 10_000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        // gedit: create tmp; write tmp; link f f~; rename tmp f.
        let mut new_content = vec![5u8; 10_000];
        new_content[0] = 6;
        fs.create("/tmp0").unwrap();
        pump(&mut client, &mut fs);
        fs.write("/tmp0", 0, &new_content).unwrap();
        pump(&mut client, &mut fs);
        fs.close_path("/tmp0").unwrap();
        pump(&mut client, &mut fs);
        fs.link("/f", "/f~").unwrap();
        pump(&mut client, &mut fs);
        fs.rename("/tmp0", "/f").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert!(
            msgs.iter()
                .any(|m| matches!(m.payload, UpdatePayload::Delta { .. })),
            "expected a delta, got {msgs:?}"
        );
        // No full 10 KB re-upload happened.
        let total: u64 = msgs.iter().map(UpdateMsg::wire_size).sum();
        assert!(total < 5000, "uploaded {total} bytes");
    }

    #[test]
    fn delete_then_recreate_uses_preserved_content() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![3u8; 8000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        // Bad update pattern: delete, recreate, rewrite almost-same data.
        let mut new_content = vec![3u8; 8000];
        new_content[7999] = 4;
        fs.unlink("/f").unwrap();
        pump(&mut client, &mut fs);
        fs.create("/f").unwrap();
        pump(&mut client, &mut fs);
        fs.write("/f", 0, &new_content).unwrap();
        pump(&mut client, &mut fs);
        fs.close_path("/f").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert!(
            msgs.iter()
                .any(|m| matches!(m.payload, UpdatePayload::Delta { .. })),
            "expected delta from preserved content, got {msgs:?}"
        );
    }

    #[test]
    fn unlinked_never_uploaded_file_is_elided() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/a").unwrap();
        fs.create("/b").unwrap();
        fs.create("/c").unwrap();
        fs.write("/a", 0, b"temp").unwrap();
        fs.unlink("/a").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let groups = client.tick(&fs);
        let msgs: Vec<_> = groups.iter().flatten().collect();
        // /a never reaches the cloud, but /b and /c do — atomically.
        assert!(msgs.iter().all(|m| !m.path.starts_with("/a")));
        assert_eq!(msgs.len(), 2);
        // They were glued into one transaction by the backindex.
        assert!(msgs.iter().all(|m| m.txn.is_some()));
    }

    #[test]
    fn large_inplace_update_is_delta_compressed() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/db").unwrap();
        fs.write("/db", 0, &vec![1u8; 100_000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        // Rewrite 60% of the file with identical bytes (e.g. a journal
        // replay writing mostly unchanged pages): raw RPC would ship 60 KB,
        // the undo-log delta ships almost nothing.
        fs.write("/db", 0, &vec![1u8; 60_000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert_eq!(msgs.len(), 1);
        match &msgs[0].payload {
            UpdatePayload::Delta { delta, .. } => {
                // Raw RPC would ship 60 KB; the delta is two orders of
                // magnitude smaller (block-copy headers plus an unmatched
                // sub-block tail).
                assert!(delta.wire_size() < 4000, "delta {}", delta.wire_size());
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn small_inplace_update_ships_raw_ops() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/db").unwrap();
        fs.write("/db", 0, &vec![1u8; 100_000]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        fs.write("/db", 500, b"xy").unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert!(matches!(msgs[0].payload, UpdatePayload::Ops(_)));
        assert!(msgs[0].wire_size() < 200);
    }

    #[test]
    fn corruption_is_detected_and_quarantined() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![0u8; 8192]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        // Silent corruption under the interception layer.
        fs.inject_bit_flip("/f", 100, 0).unwrap();
        // The application writes one byte nearby.
        fs.write("/f", 200, b"z").unwrap();
        pump(&mut client, &mut fs);
        assert_eq!(client.issues().len(), 1);
        assert_eq!(client.issues()[0].kind, IssueKind::Corruption);
        assert!(client.is_quarantined("/f"));
        // Nothing is uploaded for the corrupted file.
        clock.advance(4000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert!(msgs.is_empty(), "got {msgs:?}");
        // Recovery restores the file and lifts the quarantine.
        let good = vec![0u8; 8192];
        client.recover_file("/f", &good, &mut fs);
        assert!(!client.is_quarantined("/f"));
        assert_eq!(fs.read_all("/f").unwrap(), good);
    }

    #[test]
    fn verified_read_returns_data_or_detects() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![7u8; 8192]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        // Clean read: data comes back verified.
        let data = client.verified_read("/f", 100, 50, &fs).unwrap();
        assert_eq!(data, vec![7u8; 50]);

        // Silent corruption in block 1: the read detects it.
        fs.inject_bit_flip("/f", 5000, 1).unwrap();
        let err = client.verified_read("/f", 4096, 100, &fs).unwrap_err();
        assert_eq!(err.kind, IssueKind::Corruption);
        assert_eq!(err.blocks, vec![1]);
        assert!(client.is_quarantined("/f"));
    }

    #[test]
    fn crash_scan_detects_torn_writes() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![9u8; 8192]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);

        fs.inject_torn_write("/f", 4096, &[7u8; 100]).unwrap();
        let issues = client.crash_recovery_scan(&["/f".to_string()], &fs);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, IssueKind::CrashInconsistency);
        assert_eq!(issues[0].blocks, vec![1]);
    }

    #[test]
    fn clean_crash_scan_reports_nothing() {
        let (mut client, mut fs, clock) = setup();
        fs.create("/f").unwrap();
        fs.write("/f", 0, &vec![9u8; 4096]).unwrap();
        pump(&mut client, &mut fs);
        clock.advance(4000);
        client.tick(&fs);
        assert!(client
            .crash_recovery_scan(&["/f".to_string()], &fs)
            .is_empty());
    }

    #[test]
    fn bootstrap_uploads_existing_files() {
        let clock = SimClock::new();
        let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
        let mut fs = Vfs::new();
        fs.create("/pre").unwrap();
        fs.write("/pre", 0, b"existing").unwrap();
        fs.enable_event_log();
        fs.drain_events();
        client.bootstrap(&fs);
        clock.advance(4000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0].payload, UpdatePayload::Full(d) if &d[..] == b"existing"));
    }

    #[test]
    fn apply_remote_updates_local_fs() {
        let (mut client, mut fs, _clock) = setup();
        let msg = UpdateMsg {
            path: "/shared".into(),
            base: None,
            version: Some(Version {
                client: ClientId(2),
                counter: 1,
            }),
            payload: UpdatePayload::Full(Payload::from_static(b"from-peer")),
            txn: None,
            group: None,
        };
        let conflict = client.apply_remote(&msg, &mut fs);
        assert!(conflict.is_none());
        assert_eq!(fs.read_all("/shared").unwrap(), b"from-peer");
        // The engine did not try to re-sync its own application.
        assert_eq!(client.queued_nodes(), 0);
    }

    #[test]
    fn apply_remote_conflicts_with_local_pending() {
        let (mut client, mut fs, _clock) = setup();
        fs.create("/doc").unwrap();
        fs.write("/doc", 0, b"local edit").unwrap();
        pump(&mut client, &mut fs);
        // Remote update arrives before our node uploads.
        let msg = UpdateMsg {
            path: "/doc".into(),
            base: None,
            version: Some(Version {
                client: ClientId(2),
                counter: 5,
            }),
            payload: UpdatePayload::Full(Payload::from_static(b"remote wins")),
            txn: None,
            group: None,
        };
        let conflict = client
            .apply_remote(&msg, &mut fs)
            .expect("conflict expected");
        assert_eq!(conflict.path, "/doc");
        assert_eq!(fs.read_all("/doc").unwrap(), b"remote wins");
        assert_eq!(fs.read_all(&conflict.local_copy).unwrap(), b"local edit");
    }

    #[test]
    fn version_counter_is_monotonic_per_client() {
        let (mut client, mut fs, _clock) = setup();
        fs.create("/a").unwrap();
        fs.create("/b").unwrap();
        pump(&mut client, &mut fs);
        let va = client.version_of("/a").unwrap();
        let vb = client.version_of("/b").unwrap();
        assert_eq!(va.client, ClientId(1));
        assert!(vb.counter > va.counter);
    }
}
