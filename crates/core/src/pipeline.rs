//! Streaming upload pipeline: bounded chunk frames between the delta
//! encoder and the simulated wire.
//!
//! The materialized path builds every [`UpdateMsg`] of a transaction
//! group, sums their [`wire_size`](UpdateMsg::wire_size), and puts the
//! whole group on the link in one shot — peak client memory tracks the
//! *group* size, and the link sits idle while the encoder works. This
//! module replaces that with a producer/consumer pipeline:
//!
//! * the encoder side turns each message into a sequence of
//!   [`ChunkFrame`]s — scatter-gather pieces mixing small control
//!   buffers (headers, op tags) with shared [`Payload`] views, never
//!   copying payload bytes — holding at most `chunk_budget` literal
//!   bytes each;
//! * frames travel over a **bounded** channel ([`run_pipeline`]) with
//!   byte-based back-pressure: the encoder blocks once
//!   `chunk_budget * pipeline_depth` bytes are queued, so peak pipeline
//!   memory is a configuration constant instead of ballooning with the
//!   delta;
//! * the uploader side puts each frame on the wire as it arrives
//!   ([`Link::upload_part`](deltacfs_net::Link::upload_part)) and feeds
//!   it to [`CloudServer::receive_chunk`], which stages bytes per
//!   message and commits the group atomically when the final chunk
//!   lands.
//!
//! Accounting is exact, not approximate: the [`ChunkAccountant`]
//! charges each streamed chunk so the per-group total equals the
//! materialized `wire_size` byte for byte — ops that a chunk boundary
//! split are charged one header, just as the receiver's
//! [`Delta::from_ops`](deltacfs_delta::Delta) re-merge produces one op.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use deltacfs_delta::{
    local, record_hierarchy_stats, take_hierarchy_stats, Cost, Delta, DeltaChunk, DeltaOp,
    DeltaParams, HierarchyStats, OP_HEADER_BYTES,
};
use deltacfs_net::{Link, SimTime};
use deltacfs_obs::Obs;

use crate::protocol::{
    ApplyOutcome, GroupId, Payload, UpdateMsg, UpdatePayload, ACK_WIRE_BYTES, MSG_HEADER_BYTES,
};
use crate::codec::WireCodec;
use crate::server::CloudServer;
use crate::wire::{self, Codec, FrameSeg, WireError};

/// One scatter-gather piece of a [`ChunkFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePiece {
    /// Owned control bytes: message headers, op tags, length prefixes.
    Control(Bytes),
    /// A shared payload view — an `Arc` bump, not a copy.
    Shared(Payload),
}

impl FramePiece {
    /// The piece's bytes, however they are stored.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            FramePiece::Control(b) => b,
            FramePiece::Shared(p) => p,
        }
    }
}

/// One bounded unit of a streamed group upload.
///
/// Concatenating the `pieces` of every frame of one message yields that
/// message's wire encoding (op streams are end-marker terminated, so
/// chunked emission is just a split of the same byte stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFrame {
    /// The transaction group this frame belongs to.
    pub group: GroupId,
    /// Index of the message within the group.
    pub msg_idx: usize,
    /// Index of this chunk within the message.
    pub chunk_idx: usize,
    /// Whether this frame completes its message.
    pub last_in_msg: bool,
    /// Whether this frame completes the whole group (the server commits
    /// the staged messages atomically when it lands).
    pub last_in_group: bool,
    /// Scatter-gather contents, in wire order.
    pub pieces: Vec<FramePiece>,
    /// Model bytes this frame contributes to the traffic accounting.
    /// For raw frames these sum per group exactly to the materialized
    /// `Σ wire_size()`; a compressed frame accounts its (smaller)
    /// envelope instead, so back-pressure and traffic both track the
    /// bytes that actually cross the wire.
    pub accounted: u64,
    /// How the pieces are encoded — [`Codec::Raw`] pieces are message
    /// bytes, [`Codec::Lz77`] pieces form a compressed envelope the
    /// receiver inflates back into the identical message bytes.
    pub codec: Codec,
}

impl ChunkFrame {
    /// Real bytes across all pieces.
    pub fn byte_len(&self) -> u64 {
        self.pieces.iter().map(|p| p.as_slice().len() as u64).sum()
    }

    /// For a compressed frame, the raw byte count its envelope inflates
    /// back to; `None` for raw frames. The link's codec-aware part
    /// methods charge the modeled compression CPU against this.
    pub fn compressed_from(&self) -> Option<u64> {
        match self.codec {
            Codec::Raw => None,
            Codec::Lz77 { raw_len } => Some(raw_len),
        }
    }

    /// Bytes carried by shared payload pieces (the zero-copy part).
    pub fn payload_bytes(&self) -> u64 {
        self.pieces
            .iter()
            .map(|p| match p {
                FramePiece::Shared(s) => s.len() as u64,
                FramePiece::Control(_) => 0,
            })
            .sum()
    }
}

/// Assembly state of one streamed group: decoded messages so far plus
/// the bytes of the message currently arriving.
#[derive(Debug, Clone, Default)]
struct StageState {
    msgs: Vec<UpdateMsg>,
    cur: Vec<u8>,
    next_msg: usize,
    next_chunk: usize,
}

/// Per-`<CliID, GroupSeq>` chunk staging, shared by both stream
/// directions: the cloud stages client uploads
/// ([`CloudServer::receive_chunk`]) and each client stages the server's
/// forwarded groups through the same state machine, so the commit
/// semantics are symmetric by construction.
///
/// Frames stage per-message bytes (the receiver's single "NIC landing"
/// copy); a `last_in_msg` frame freezes and decodes the message, and
/// the `last_in_group` frame releases the whole group at once — so a
/// group whose stream is cut mid-way releases *nothing*, and a
/// whole-group resend restarts cleanly: chunk `(0, 0)` always resets a
/// stale stage for its group.
#[derive(Debug, Default)]
pub struct ChunkStager {
    stages: HashMap<GroupId, StageState>,
}

impl ChunkStager {
    /// An empty stager.
    pub fn new() -> Self {
        ChunkStager::default()
    }

    /// Stages one frame. Returns `Ok(Some(msgs))` — the group's decoded
    /// messages, in order — when the group completes, `Ok(None)` for an
    /// intermediate frame. The caller owns commit (idempotency,
    /// application): the stager only assembles.
    ///
    /// # Errors
    ///
    /// An out-of-order or unknown frame (a prior chunk was lost) drops
    /// the stage and returns [`WireError::Malformed`]; staged bytes
    /// that fail to decode are reported likewise. Either way the group
    /// is untouched and a full resend recovers.
    pub fn accept(&mut self, frame: &ChunkFrame) -> Result<Option<Vec<UpdateMsg>>, WireError> {
        if frame.msg_idx == 0 && frame.chunk_idx == 0 {
            self.stages.insert(frame.group, StageState::default());
        }
        let Some(stage) = self.stages.get_mut(&frame.group) else {
            return Err(WireError::Malformed("chunk for unknown group stream"));
        };
        if frame.msg_idx != stage.next_msg || frame.chunk_idx != stage.next_chunk {
            self.stages.remove(&frame.group);
            return Err(WireError::Malformed("chunk out of order"));
        }
        match frame.codec {
            Codec::Raw => {
                for piece in &frame.pieces {
                    stage.cur.extend_from_slice(piece.as_slice());
                }
            }
            Codec::Lz77 { raw_len } => {
                // Inflate the envelope back into the exact message bytes
                // a raw frame would have carried; `raw_len` caps the
                // allocation, so a corrupt frame cannot balloon memory.
                let mut env = Vec::with_capacity(frame.byte_len() as usize);
                for piece in &frame.pieces {
                    env.extend_from_slice(piece.as_slice());
                }
                let restored = wire::decode_codec_envelope(&env)
                    .ok()
                    .and_then(|(declared, body)| {
                        if declared != raw_len {
                            return None;
                        }
                        let out = deltacfs_delta::compress::decompress_limited(
                            body,
                            usize::try_from(raw_len).ok()?,
                        )?;
                        (out.len() as u64 == raw_len).then_some(out)
                    });
                match restored {
                    Some(bytes) => stage.cur.extend_from_slice(&bytes),
                    None => {
                        self.stages.remove(&frame.group);
                        return Err(WireError::Malformed("codec frame"));
                    }
                }
            }
        }
        if frame.last_in_msg {
            let buf = Bytes::from(std::mem::take(&mut stage.cur));
            match wire::decode_shared(&buf) {
                Ok(msg) => stage.msgs.push(msg),
                Err(e) => {
                    self.stages.remove(&frame.group);
                    return Err(e);
                }
            }
            stage.next_msg += 1;
            stage.next_chunk = 0;
        } else {
            stage.next_chunk += 1;
        }
        if frame.last_in_group {
            let stage = self
                .stages
                .remove(&frame.group)
                .expect("stage exists: we just appended to it");
            return Ok(Some(stage.msgs));
        }
        Ok(None)
    }

    /// How many groups are currently staged (incomplete streams).
    pub fn staged_groups(&self) -> usize {
        self.stages.len()
    }

    /// Drops every staged group — what a crash does to in-flight
    /// streams on the receiving side.
    pub fn clear(&mut self) {
        self.stages.clear();
    }
}

/// What the last op of the previously accounted chunk was, for the
/// cross-boundary merge rules.
#[derive(Debug, Clone, Copy)]
enum PrevOp {
    Copy { end: u64 },
    Literal,
}

/// Charges streamed [`DeltaChunk`]s so their total equals the
/// materialized delta's wire size.
///
/// A materialized [`Delta`](deltacfs_delta::Delta) charges
/// [`OP_HEADER_BYTES`] per op plus the literal bytes. Chunked emission
/// may split one op across a boundary (a literal cut by the budget, a
/// copy run continued in the next chunk); the receiver's `from_ops`
/// re-merge collapses those back into one op, so the accountant charges
/// the header only for the op's first piece.
#[derive(Debug, Default)]
pub struct ChunkAccountant {
    prev: Option<PrevOp>,
}

impl ChunkAccountant {
    /// A fresh accountant (one per streamed message).
    pub fn new() -> Self {
        ChunkAccountant::default()
    }

    /// Model bytes for `chunk`: literals plus per-op headers, minus the
    /// header of a leading op that merges with the previous chunk's
    /// trailing op.
    pub fn account(&mut self, chunk: &DeltaChunk) -> u64 {
        let mut bytes = 0u64;
        for (i, op) in chunk.ops.iter().enumerate() {
            let merges = i == 0
                && match (self.prev, op) {
                    (Some(PrevOp::Copy { end }), DeltaOp::Copy { offset, .. }) => end == *offset,
                    (Some(PrevOp::Literal), DeltaOp::Literal(_)) => true,
                    _ => false,
                };
            if !merges {
                bytes += OP_HEADER_BYTES;
            }
            match op {
                DeltaOp::Copy { offset, len } => {
                    self.prev = Some(PrevOp::Copy { end: offset + len })
                }
                DeltaOp::Literal(b) => {
                    bytes += b.len() as u64;
                    self.prev = Some(PrevOp::Literal);
                }
            }
        }
        bytes
    }
}

/// Turns a message's [`DeltaChunk`] stream into [`ChunkFrame`]s.
///
/// The first frame carries the message header and the delta body's
/// `base_path`; the last frame (the chunk with `last == true`) closes
/// the op stream. Literal bytes are referenced as shared pieces, never
/// copied.
#[derive(Debug)]
pub struct DeltaFramer {
    meta: UpdateMsg,
    base_path: String,
    group: GroupId,
    msg_idx: usize,
    last_in_group: bool,
    chunk_idx: usize,
    acct: ChunkAccountant,
}

impl DeltaFramer {
    /// A framer for one Delta-payload message.
    ///
    /// `msg`'s payload must be [`UpdatePayload::Delta`]; its `delta`
    /// contents are ignored (the ops come from the chunk stream), so
    /// streaming callers pass an empty one. `last_in_group` marks this
    /// message as the group's final one, propagated to its last frame.
    ///
    /// # Panics
    ///
    /// Panics if `msg.payload` is not a Delta or `msg.group` is `None`.
    pub fn new(msg: &UpdateMsg, msg_idx: usize, last_in_group: bool) -> Self {
        let UpdatePayload::Delta { base_path, .. } = &msg.payload else {
            panic!("DeltaFramer needs a Delta payload");
        };
        DeltaFramer {
            base_path: base_path.clone(),
            group: msg.group.expect("streamed messages carry a group id"),
            meta: msg.clone(),
            msg_idx,
            last_in_group,
            chunk_idx: 0,
            acct: ChunkAccountant::new(),
        }
    }

    /// Frames the next chunk of the stream.
    pub fn frame(&mut self, chunk: &DeltaChunk) -> ChunkFrame {
        let mut pieces = Vec::new();
        let mut control = Vec::new();
        let mut accounted = self.acct.account(chunk);
        if self.chunk_idx == 0 {
            wire::begin_delta_stream(&mut control, &self.meta, &self.base_path);
            accounted += MSG_HEADER_BYTES + self.base_path.len() as u64;
        }
        for op in &chunk.ops {
            match op {
                DeltaOp::Copy { .. } => {
                    wire::append_delta_ops(&mut control, std::slice::from_ref(op));
                }
                DeltaOp::Literal(b) => {
                    // Tag and length go to control; the literal itself is
                    // a shared view of the encoder's buffer.
                    control.push(1);
                    control.extend_from_slice(&(b.len() as u64).to_le_bytes());
                    if !control.is_empty() {
                        pieces.push(FramePiece::Control(Bytes::from(std::mem::take(
                            &mut control,
                        ))));
                    }
                    pieces.push(FramePiece::Shared(Payload::from(b.clone())));
                }
            }
        }
        if chunk.last {
            wire::finish_op_stream(&mut control);
        }
        if !control.is_empty() {
            pieces.push(FramePiece::Control(Bytes::from(control)));
        }
        let frame = ChunkFrame {
            group: self.group,
            msg_idx: self.msg_idx,
            chunk_idx: self.chunk_idx,
            last_in_msg: chunk.last,
            last_in_group: self.last_in_group && chunk.last,
            pieces,
            accounted,
            codec: Codec::Raw,
        };
        self.chunk_idx += 1;
        frame
    }
}

/// Splits a materialized delta's ops into budget-bounded chunks without
/// copying: literal pieces are zero-copy `Bytes` slices.
fn split_delta_ops(delta: &Delta, budget: usize, mut emit: impl FnMut(DeltaChunk)) {
    let budget = budget.max(1);
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut lit = 0usize;
    for op in delta.ops() {
        match op {
            DeltaOp::Copy { .. } => ops.push(op.clone()),
            DeltaOp::Literal(b) => {
                let mut off = 0;
                while off < b.len() {
                    let take = (budget - lit).min(b.len() - off);
                    ops.push(DeltaOp::Literal(b.slice(off..off + take)));
                    lit += take;
                    off += take;
                    if lit >= budget {
                        emit(DeltaChunk {
                            ops: std::mem::take(&mut ops),
                            last: false,
                        });
                        lit = 0;
                    }
                }
            }
        }
    }
    emit(DeltaChunk { ops, last: true });
}

/// Frames every message of a materialized transaction group as a chunk
/// stream: Delta payloads are split into budget-bounded frames via
/// [`DeltaFramer`]; other payloads are scatter-gather packed with their
/// shared bodies sliced at the budget, so a group-sized `Full` body
/// streams as many bounded frames instead of one group-sized unit
/// (payload bytes stay shared either way — slicing is an `Arc` bump).
/// Per group, the `accounted` fields sum exactly to `Σ wire_size()`:
/// a split message charges its model header on the first frame and
/// payload bytes where they travel.
///
/// # Panics
///
/// Panics if any message lacks a group id or the group is empty.
pub fn frame_group(msgs: &[UpdateMsg], chunk_budget: usize, mut emit: impl FnMut(ChunkFrame)) {
    assert!(!msgs.is_empty(), "cannot frame an empty group");
    let budget = chunk_budget.max(1);
    let mut scratch = Vec::new();
    for (msg_idx, msg) in msgs.iter().enumerate() {
        let last_in_group = msg_idx == msgs.len() - 1;
        let group = msg.group.expect("streamed messages carry a group id");
        if let UpdatePayload::Delta { delta, .. } = &msg.payload {
            let mut framer = DeltaFramer::new(msg, msg_idx, last_in_group);
            split_delta_ops(delta, budget, |chunk| emit(framer.frame(&chunk)));
        } else {
            let wire_frame = wire::encode_vectored(msg, &mut scratch);
            // Greedy packing: shared payload bytes count against the
            // budget (control framing rides along, as in the delta
            // path); a new frame opens only when payload bytes remain.
            let mut packed: Vec<Vec<FramePiece>> = vec![Vec::new()];
            let mut used = 0usize;
            let mut payload_total = 0u64;
            for seg in wire_frame.segs {
                match seg {
                    FrameSeg::Scratch(r) => packed
                        .last_mut()
                        .expect("packed starts non-empty")
                        .push(FramePiece::Control(Bytes::copy_from_slice(&scratch[r]))),
                    FrameSeg::Shared(p) => {
                        payload_total += p.len() as u64;
                        let mut off = 0;
                        while off < p.len() {
                            if used >= budget {
                                packed.push(Vec::new());
                                used = 0;
                            }
                            let take = (budget - used).min(p.len() - off);
                            packed
                                .last_mut()
                                .expect("packed starts non-empty")
                                .push(FramePiece::Shared(p.slice(off..off + take)));
                            used += take;
                            off += take;
                        }
                    }
                }
            }
            let header_share = msg.wire_size() - payload_total;
            let chunks = packed.len();
            for (chunk_idx, pieces) in packed.into_iter().enumerate() {
                let last = chunk_idx == chunks - 1;
                let mut frame = ChunkFrame {
                    group,
                    msg_idx,
                    chunk_idx,
                    last_in_msg: last,
                    last_in_group: last_in_group && last,
                    pieces,
                    accounted: 0,
                    codec: Codec::Raw,
                };
                frame.accounted =
                    frame.payload_bytes() + if chunk_idx == 0 { header_share } else { 0 };
                emit(frame);
            }
        }
    }
}

/// Bounds for one pipelined upload.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Literal-byte budget per chunk frame.
    pub chunk_budget: usize,
    /// Bounded channel depth between encoder and uploader.
    pub pipeline_depth: usize,
}

/// How the uploader stamps each frame's ready time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pace {
    /// Every frame is ready at the call's `now` — fully deterministic,
    /// used by the engine (frame production is cheap there).
    Immediate,
    /// A frame is ready at `now` plus the real encoder time elapsed
    /// when it was received — this is what lets the bench show upload
    /// of chunk `k` overlapping the encoding of chunk `k + 1`.
    Measured,
}

/// What a pipelined upload observed.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// Peak bytes queued between encoder and uploader (frame contents,
    /// control and payload alike).
    pub max_inflight_bytes: u64,
    /// Frames that crossed the channel.
    pub frames: u64,
    /// Simulated completion time of the last uploaded part.
    pub done: SimTime,
}

/// The encoder side's handle: sends frames downstream with in-flight
/// byte accounting. Blocks while the pipeline holds its byte cap
/// (back-pressure); an empty pipeline always admits one frame, so a
/// frame slightly over the cap cannot wedge the channel.
pub struct FrameSender<'a> {
    tx: Sender<ChunkFrame>,
    inflight: &'a Mutex<u64>,
    drained: &'a Condvar,
    cap: u64,
    max_inflight: &'a AtomicU64,
}

impl FrameSender<'_> {
    /// Queues one frame; returns `false` if the uploader has gone away.
    pub fn send(&self, frame: ChunkFrame) -> bool {
        let bytes = frame.byte_len();
        {
            let mut queued = self.inflight.lock().expect("pipeline lock");
            while *queued > 0 && *queued + bytes > self.cap {
                queued = self.drained.wait(queued).expect("pipeline lock");
            }
            *queued += bytes;
            self.max_inflight.fetch_max(*queued, Ordering::SeqCst);
        }
        if self.tx.send(frame).is_err() {
            *self.inflight.lock().expect("pipeline lock") -= bytes;
            return false;
        }
        true
    }
}

/// Runs one producer/consumer pipeline: `produce` emits frames from a
/// scoped encoder thread while `upload` consumes them on the calling
/// thread. Back-pressure is byte-based: at most
/// `chunk_budget * pipeline_depth` bytes sit between the two (the one
/// exception being a single frame admitted into an empty pipeline, so
/// an over-cap frame cannot deadlock the encoder). With frames of at
/// most `chunk_budget` bytes — the budget covers a frame's control
/// overhead as long as `pipeline_depth >= 2` — the report's
/// `max_inflight_bytes` is therefore bounded by the cap by
/// construction, which the bench-smoke CI job asserts.
///
/// The `pipeline.inflight_bytes` gauge tracks the queued bytes and
/// every frame logs a `chunk` trace event, so a flight recording of a
/// streamed upload shows the interleaving.
pub fn run_pipeline<P>(
    cfg: PipelineConfig,
    pace: Pace,
    now: SimTime,
    obs: &Obs,
    produce: P,
    mut upload: impl FnMut(ChunkFrame, SimTime) -> SimTime,
) -> PipelineReport
where
    P: FnOnce(&FrameSender<'_>) + Send,
{
    let depth = cfg.pipeline_depth.max(1);
    let cap = cfg.chunk_budget.max(1) as u64 * depth as u64;
    let (tx, rx) = bounded::<ChunkFrame>(depth);
    let inflight = Mutex::new(0u64);
    let drained = Condvar::new();
    let max_inflight = AtomicU64::new(0);
    let gauge = obs
        .registry
        .gauge("pipeline.inflight_bytes", "bytes queued encoder->uploader");
    let started = std::time::Instant::now();
    let mut frames = 0u64;
    let mut done = now;
    std::thread::scope(|scope| {
        let sender = FrameSender {
            tx,
            inflight: &inflight,
            drained: &drained,
            cap,
            max_inflight: &max_inflight,
        };
        let encoder = scope.spawn(move || produce(&sender));
        while let Ok(frame) = rx.recv() {
            let ready = match pace {
                Pace::Immediate => now,
                Pace::Measured => now.plus_millis(started.elapsed().as_millis() as u64),
            };
            gauge.set(*inflight.lock().expect("pipeline lock") as i64);
            obs.tracer
                .event(ready.as_millis(), "pipeline", "chunk", || {
                    format!(
                        "msg {} chunk {}{}: {} bytes ({} shared)",
                        frame.msg_idx,
                        frame.chunk_idx,
                        if frame.last_in_group { " [group end]" } else { "" },
                        frame.byte_len(),
                        frame.payload_bytes(),
                    )
                });
            let bytes = frame.byte_len();
            frames += 1;
            done = upload(frame, ready);
            let mut queued = inflight.lock().expect("pipeline lock");
            *queued -= bytes;
            gauge.set(*queued as i64);
            drop(queued);
            drained.notify_all();
        }
        encoder.join().expect("pipeline encoder panicked");
    });
    PipelineReport {
        max_inflight_bytes: max_inflight.load(Ordering::SeqCst),
        frames,
        done,
    }
}

/// Streams a freshly encoded local delta for one file straight onto the
/// wire: `local::diff_streaming` runs on the encoder thread, each
/// [`DeltaChunk`] is framed and uploaded as it lands, and the server
/// commits the (single-message) group when the final chunk arrives.
///
/// This is the full encode→pack→upload overlap in one call: with a
/// bounded channel of `pipeline_depth` frames of at most `chunk_budget`
/// literal bytes, peak in-flight memory no longer tracks the delta
/// size. Traffic accounting, the applied content, and the client
/// [`Cost`] are identical to materializing the delta and uploading it
/// in one shot.
///
/// With a codec attached (`codec: Some(..)`) each frame runs through
/// the [`WireCodec`]'s cost-benefit decision on the encoder thread; a
/// frame that compresses ships its (smaller) envelope and pays the
/// link's modeled compression CPU, and the server's stager inflates it
/// back — applied content and outcomes are identical either way.
///
/// # Panics
///
/// Panics if `msg.payload` is not a Delta or `msg.group` is `None`.
#[allow(clippy::too_many_arguments)]
pub fn upload_delta_streaming(
    old: &[u8],
    new: &[u8],
    params: &DeltaParams,
    workers: usize,
    msg: &UpdateMsg,
    cfg: &PipelineConfig,
    link: &mut Link,
    server: &mut CloudServer,
    now: SimTime,
    obs: &Obs,
    cost: &mut Cost,
    codec: Option<&mut WireCodec>,
) -> (PipelineReport, Vec<ApplyOutcome>) {
    let mut framer = DeltaFramer::new(msg, 0, true);
    let mut outcomes = Vec::new();
    let at_ms = now.as_millis();
    let gkey = msg
        .group
        .expect("streamed messages carry a group id")
        .span_key();
    let spans = &obs.spans;
    let span_on = spans.enabled();
    // The encode span closes at the last frame's ready time — under
    // Pace::Measured that is when the encoder actually finished, so the
    // profiler sees the true encode/upload overlap.
    let encode_span = spans.start(gkey, "pipeline", "delta.encode", at_ms, None);
    let mut encode_end_ms = at_ms;
    let mut stage_first_ms: Option<u64> = None;
    // The diff runs on the encoder thread; its hierarchy stats land in
    // *that* thread's accumulator, so the encoder drains them here and
    // the tail below re-records them on the caller's thread.
    let mut hstats = HierarchyStats::default();
    let hstats_out = &mut hstats;
    let mut report = run_pipeline(
        *cfg,
        Pace::Measured,
        now,
        obs,
        move |sender| {
            let mut codec = codec;
            local::diff_streaming(old, new, params, workers, cost, cfg.chunk_budget, |chunk| {
                let frame = framer.frame(&chunk);
                let frame = match codec.as_deref_mut() {
                    Some(codec) => codec.encode_frame(frame, at_ms),
                    None => frame,
                };
                sender.send(frame);
            });
            *hstats_out = take_hierarchy_stats();
        },
        |frame, ready| {
            let busy_before = link.upload_busy_until();
            let done = link.upload_part_codec(frame.accounted, frame.compressed_from(), ready);
            if span_on {
                encode_end_ms = encode_end_ms.max(ready.as_millis());
                spans.record(
                    gkey,
                    "link",
                    "wire.upload",
                    ready.max(busy_before).as_millis(),
                    done.as_millis(),
                    None,
                    || {
                        format!(
                            "msg {} chunk {}: {} wire bytes",
                            frame.msg_idx, frame.chunk_idx, frame.accounted
                        )
                    },
                );
                if stage_first_ms.is_none() {
                    stage_first_ms = Some(done.as_millis());
                }
            }
            if let Some(out) = server
                .receive_chunk(&frame)
                .expect("in-process chunk stream cannot be malformed")
            {
                if span_on {
                    // Staging and apply are memory movement the clock
                    // does not model: zero-width spans at commit time,
                    // with the staging window in the detail.
                    let d = done.as_millis();
                    spans.record(gkey, "server", "server.stage", d, d, None, || {
                        format!(
                            "committed after a {}ms staging window",
                            d - stage_first_ms.unwrap_or(d)
                        )
                    });
                    spans.record(gkey, "server", "server.apply", d, d, None, || {
                        format!("{} outcome(s)", out.len())
                    });
                }
                outcomes.extend(out);
            }
            done
        },
    );
    let parts_done = report.done;
    report.done = link.upload_end_msg(report.done);
    link.download(ACK_WIRE_BYTES, now);
    if hstats.engaged() {
        record_hierarchy_stats(&hstats);
        if span_on {
            spans.record(gkey, "pipeline", "delta.hierarchy", at_ms, at_ms, None, || {
                format!(
                    "{} span(s) matched wholesale, {} bytes skipped, {} leaf-walked",
                    hstats.levels_matched(),
                    hstats.bytes_skipped,
                    hstats.leaf_walk_bytes
                )
            });
        }
    }
    if span_on {
        spans.end_detail(encode_span, encode_end_ms, || {
            format!("{} frame(s) emitted", report.frames)
        });
        spans.record(
            gkey,
            "link",
            "wire.upload",
            parts_done.as_millis(),
            report.done.as_millis(),
            None,
            || "end-of-message latency".into(),
        );
    }
    (report, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClientId, FileOpItem, Version};

    fn gid() -> GroupId {
        GroupId {
            client: ClientId(1),
            seq: 1,
        }
    }

    fn ver(n: u64) -> Version {
        Version {
            client: ClientId(1),
            counter: n,
        }
    }

    fn delta_msg(delta: Delta) -> UpdateMsg {
        UpdateMsg {
            path: "/f".into(),
            base: Some(ver(1)),
            version: Some(ver(2)),
            payload: UpdatePayload::Delta {
                base_path: "/f".into(),
                delta,
            },
            txn: None,
            group: Some(gid()),
        }
    }

    fn sample_delta() -> Delta {
        Delta::from_ops(vec![
            DeltaOp::Copy { offset: 0, len: 64 },
            DeltaOp::Literal(Bytes::from(vec![7u8; 1000])),
            DeltaOp::Copy {
                offset: 64,
                len: 32,
            },
            DeltaOp::Literal(Bytes::from(vec![9u8; 10])),
        ])
    }

    #[test]
    fn framed_group_accounts_exactly_like_the_materialized_one() {
        let msgs = vec![
            UpdateMsg {
                path: "/f".into(),
                base: None,
                version: Some(ver(1)),
                payload: UpdatePayload::Ops(vec![FileOpItem::Write {
                    offset: 0,
                    data: Payload::from(vec![1u8; 300]),
                }]),
                txn: Some(3),
                group: Some(gid()),
            },
            delta_msg(sample_delta()),
        ];
        let materialized: u64 = msgs.iter().map(UpdateMsg::wire_size).sum();
        for budget in [1usize, 64, 256, 1 << 20] {
            let mut frames = Vec::new();
            frame_group(&msgs, budget, |f| frames.push(f));
            let streamed: u64 = frames.iter().map(|f| f.accounted).sum();
            assert_eq!(streamed, materialized, "budget {budget}");
            assert_eq!(frames.last().map(|f| f.last_in_group), Some(true));
            assert_eq!(
                frames.iter().filter(|f| f.last_in_group).count(),
                1,
                "exactly one group-closing frame"
            );
        }
    }

    #[test]
    fn framed_message_bytes_reassemble_to_a_decodable_encoding() {
        let msg = delta_msg(sample_delta());
        let mut frames = Vec::new();
        frame_group(std::slice::from_ref(&msg), 100, |f| frames.push(f));
        assert!(frames.len() > 1, "budget 100 must split the 1010-byte delta");
        let mut bytes = Vec::new();
        for f in &frames {
            for p in &f.pieces {
                bytes.extend_from_slice(p.as_slice());
            }
        }
        let decoded = wire::decode(&bytes).expect("streamed bytes decode");
        // The receiver's from_ops re-merge makes the chunk splits
        // invisible: the decoded message equals the materialized one.
        assert_eq!(decoded, msg);
    }

    #[test]
    fn full_payload_splits_at_budget_and_restages_losslessly() {
        let msg = UpdateMsg {
            path: "/f".into(),
            base: None,
            version: Some(ver(1)),
            payload: UpdatePayload::Full(Payload::from(vec![0xA5u8; 5_000])),
            txn: Some(1),
            group: Some(gid()),
        };
        let mut frames = Vec::new();
        frame_group(std::slice::from_ref(&msg), 1024, |f| frames.push(f));
        assert!(
            frames.len() >= 5,
            "a 5000-byte body at a 1 KiB budget must span frames, got {}",
            frames.len()
        );
        for f in &frames {
            assert!(
                f.payload_bytes() <= 1024,
                "frame payload {} exceeds the budget",
                f.payload_bytes()
            );
        }
        assert_eq!(
            frames.iter().map(|f| f.accounted).sum::<u64>(),
            msg.wire_size(),
            "split accounting must sum to the materialized wire size"
        );
        let mut stager = ChunkStager::new();
        let mut committed = None;
        for f in &frames {
            if let Some(msgs) = stager.accept(f).expect("in-order stream stages") {
                committed = Some(msgs);
            }
        }
        assert_eq!(committed, Some(vec![msg]));
        assert_eq!(stager.staged_groups(), 0, "commit must clear the stage");
    }

    #[test]
    fn chunk_accountant_charges_split_ops_once() {
        let delta = sample_delta();
        for budget in [1usize, 3, 64, 999, 4096] {
            let mut acct = ChunkAccountant::new();
            let mut total = 0;
            split_delta_ops(&delta, budget, |chunk| total += acct.account(&chunk));
            assert_eq!(total, delta.wire_size(), "budget {budget}");
        }
    }

    #[test]
    fn pipeline_applies_back_pressure_and_bounds_inflight_bytes() {
        let obs = Obs::new();
        let msg = delta_msg(sample_delta());
        let mut frames_seen = 0;
        let budget = 100usize;
        let depth = 2usize;
        let report = run_pipeline(
            PipelineConfig {
                chunk_budget: budget,
                pipeline_depth: depth,
            },
            Pace::Immediate,
            SimTime::ZERO,
            &obs,
            |sender| {
                let mut framer = DeltaFramer::new(&msg, 0, true);
                split_delta_ops(&sample_delta(), budget, |chunk| {
                    sender.send(framer.frame(&chunk));
                });
            },
            |_, _| {
                frames_seen += 1;
                SimTime::ZERO
            },
        );
        assert_eq!(report.frames, frames_seen);
        assert!(report.frames > 1);
        // Byte-based back-pressure: the queue never exceeds the cap,
        // except for the single-frame empty-pipeline admission — and a
        // frame here is well under budget * depth.
        let cap = (budget * depth) as u64;
        assert!(
            report.max_inflight_bytes <= cap,
            "{} > {}",
            report.max_inflight_bytes,
            cap
        );
    }
}
