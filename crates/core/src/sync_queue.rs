//! The Sync Queue (paper §III-B, Figs. 6 and 7).
//!
//! Incremental data waits here before upload. Writes to the same file are
//! batched into a single *write node* (indexed by a hash table for O(1)
//! lookup); a write node is *packed* — made immutable — when its file's
//! state changes (close, rename, unlink), so a recreated file with the
//! same name cannot corrupt it. When delta encoding is triggered, the
//! corresponding write node is deleted and the delta node enqueued
//! instead.
//!
//! Operating on non-tail nodes (batching into an old write node, deleting
//! a node) violates FIFO order and therefore causality. The queue records
//! a **backindex** on every such node: a pointer to the node that was at
//! the tail when the out-of-order operation happened. All nodes covered by
//! a backindex span are released (and must be applied by the cloud) as one
//! transaction; interleaving spans are merged.

use std::collections::{HashMap, VecDeque};

use deltacfs_delta::Delta;
use deltacfs_net::SimTime;

use crate::protocol::{FileOpItem, Payload, Version};

/// What a sync-queue node carries.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The file was created empty.
    Create {
        /// The created path.
        path: String,
    },
    /// Batched intercepted operations on one file (the *write node*).
    Write {
        /// The written path.
        path: String,
        /// The batched operations, in order.
        ops: Vec<FileOpItem>,
        /// Whether the node has been packed (made immutable).
        packed: bool,
    },
    /// A triggered delta (replaces write/create nodes).
    Delta {
        /// The file the delta produces.
        path: String,
        /// The cloud-side path holding the base content.
        base_path: String,
        /// The reconstruction recipe.
        delta: Delta,
    },
    /// Full-content upload (initial sync or fallback).
    Full {
        /// The uploaded path.
        path: String,
        /// The file's entire content (shared buffer).
        data: Payload,
    },
    /// A rename.
    Rename {
        /// Old path.
        src: String,
        /// New path.
        dst: String,
    },
    /// A hard link (materializes as a server-side copy).
    Link {
        /// Existing path.
        src: String,
        /// New link name.
        dst: String,
    },
    /// A file removal.
    Unlink {
        /// The removed path.
        path: String,
    },
    /// A directory creation.
    Mkdir {
        /// The created directory.
        path: String,
    },
    /// A directory removal.
    Rmdir {
        /// The removed directory.
        path: String,
    },
}

impl NodeKind {
    /// The primary path the node concerns.
    pub fn path(&self) -> &str {
        match self {
            NodeKind::Create { path }
            | NodeKind::Write { path, .. }
            | NodeKind::Delta { path, .. }
            | NodeKind::Full { path, .. }
            | NodeKind::Unlink { path }
            | NodeKind::Mkdir { path }
            | NodeKind::Rmdir { path } => path,
            NodeKind::Rename { src, .. } | NodeKind::Link { src, .. } => src,
        }
    }
}

/// One queue entry.
#[derive(Debug, Clone)]
pub struct Node {
    /// Stable node identifier (monotonic).
    pub id: u64,
    /// Payload.
    pub kind: NodeKind,
    /// Version of the file this node's change was computed against.
    pub base: Option<Version>,
    /// Version the node produces.
    pub version: Option<Version>,
    /// When the node was enqueued.
    pub enqueued_at: SimTime,
    /// When the node was last modified (batched writes refresh this; the
    /// upload delay counts from here).
    pub last_touched: SimTime,
    /// Deleted nodes are skipped at upload but still delimit transactions.
    pub deleted: bool,
    /// Id of the node that was at the tail when this node was operated on
    /// out of FIFO order.
    pub backindex: Option<u64>,
}

/// The sync queue.
///
/// # Example
///
/// ```
/// use deltacfs_core::{FileOpItem, NodeKind, Payload, SyncQueue};
/// use deltacfs_net::SimTime;
///
/// let mut q = SyncQueue::new(3_000); // the paper's 3 s upload delay
/// q.push(
///     NodeKind::Write {
///         path: "/f".into(),
///         ops: vec![FileOpItem::Write { offset: 0, data: Payload::from_static(b"hi") }],
///         packed: false,
///     },
///     None,
///     None,
///     SimTime(0),
/// );
/// assert!(q.pop_ready(SimTime(2_999)).is_empty()); // still batching
/// assert_eq!(q.pop_ready(SimTime(3_000)).len(), 1); // aged out
/// ```
#[derive(Debug)]
pub struct SyncQueue {
    nodes: VecDeque<Node>,
    /// Path → id of that path's *open* (unpacked) write node.
    write_index: HashMap<String, u64>,
    next_id: u64,
    delay_ms: u64,
}

impl SyncQueue {
    /// Creates an empty queue whose nodes become uploadable `delay_ms`
    /// milliseconds after they were last touched.
    pub fn new(delay_ms: u64) -> Self {
        SyncQueue {
            nodes: VecDeque::new(),
            write_index: HashMap::new(),
            next_id: 1,
            delay_ms,
        }
    }

    /// Number of nodes currently queued (deleted placeholders included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the queue holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over queued nodes front to back.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// The id of the node currently at the tail, if any.
    pub fn tail_id(&self) -> Option<u64> {
        self.nodes.back().map(|n| n.id)
    }

    fn position(&self, id: u64) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// Appends a node and returns its id.
    pub fn push(
        &mut self,
        kind: NodeKind,
        base: Option<Version>,
        version: Option<Version>,
        now: SimTime,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if let NodeKind::Write { path, packed, .. } = &kind {
            if !*packed {
                self.write_index.insert(path.clone(), id);
            }
        }
        self.nodes.push_back(Node {
            id,
            kind,
            base,
            version,
            enqueued_at: now,
            last_touched: now,
            deleted: false,
            backindex: None,
        });
        id
    }

    /// Batches `op` into `path`'s open write node, if one exists. Sets a
    /// backindex when the node is not at the tail (FIFO violation).
    ///
    /// Returns the node's id, or `None` when no open write node exists
    /// (the caller should [`SyncQueue::push`] a fresh one carrying the op).
    pub fn append_write(&mut self, path: &str, op: FileOpItem, now: SimTime) -> Option<u64> {
        let id = *self.write_index.get(path)?;
        let tail = self.tail_id().expect("write_index implies non-empty queue");
        let pos = self.position(id).expect("indexed node is queued");
        let node = &mut self.nodes[pos];
        match &mut node.kind {
            NodeKind::Write { ops, .. } => {
                ops.push(op);
                node.last_touched = now;
                if tail != id {
                    // Batching into a non-tail node: remember where this
                    // operation would have gone under strict FIFO.
                    node.backindex = Some(tail);
                }
                Some(id)
            }
            _ => unreachable!("write_index points at a non-write node"),
        }
    }

    /// Packs `path`'s open write node (close/rename/unlink), making it
    /// immutable. Subsequent writes to the same name start a new node.
    /// Returns the packed node's id, if there was one.
    ///
    /// Packing also coalesces runs of strictly adjacent `Write` ops (each
    /// starting exactly where the previous one ended) into single ops.
    /// Sequential writers — editors flushing a buffer, databases appending
    /// a log — produce long such runs, and every op costs a fixed protocol
    /// header on the wire, so coalescing at pack time (once, when the node
    /// can no longer grow) cuts per-node upload overhead without touching
    /// batching or backindex semantics.
    pub fn pack(&mut self, path: &str) -> Option<u64> {
        let id = self.write_index.remove(path)?;
        let pos = self.position(id).expect("indexed node is queued");
        if let NodeKind::Write { ops, packed, .. } = &mut self.nodes[pos].kind {
            coalesce_adjacent_writes(ops);
            *packed = true;
        }
        Some(id)
    }

    /// Ids of all non-deleted nodes whose primary path is `path`.
    pub fn pending_ids_for_path(&self, path: &str) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|n| !n.deleted && n.kind.path() == path)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of non-deleted *content* nodes (create/write/full — plus unlink
    /// when `include_unlink`) for `path`. Namespace nodes (rename/link)
    /// are excluded: a triggered delta supersedes the file's content
    /// history, not the renames that preserved its old version.
    pub fn pending_content_ids(&self, path: &str, include_unlink: bool) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|n| {
                !n.deleted
                    && match &n.kind {
                        NodeKind::Create { path: p }
                        | NodeKind::Write { path: p, .. }
                        | NodeKind::Full { path: p, .. }
                        | NodeKind::Delta { path: p, .. } => p == path,
                        NodeKind::Unlink { path: p } => include_unlink && p == path,
                        _ => false,
                    }
            })
            .map(|n| n.id)
            .collect()
    }

    /// The `base` of the earliest pending content node for `path` —
    /// i.e. what the cloud holds at `path` before any of the pending
    /// history applies. Outer `None` means no content node is pending:
    /// everything the client assigned to `path` has already shipped.
    pub fn pending_chain_base(&self, path: &str) -> Option<Option<Version>> {
        self.nodes.iter().find_map(|n| {
            if n.deleted {
                return None;
            }
            let touches = match &n.kind {
                NodeKind::Create { path: p }
                | NodeKind::Write { path: p, .. }
                | NodeKind::Full { path: p, .. }
                | NodeKind::Delta { path: p, .. }
                | NodeKind::Unlink { path: p } => p == path,
                _ => false,
            };
            touches.then_some(n.base)
        })
    }

    /// Whether a pending rename still involves `path` on either end —
    /// the cloud's copy under that name is about to move, so `path`'s
    /// version there cannot be projected from the version map.
    pub fn pending_rename_touching(&self, path: &str) -> bool {
        self.nodes.iter().any(|n| {
            !n.deleted
                && matches!(&n.kind,
                    NodeKind::Rename { src, dst } if src == path || dst == path)
        })
    }

    /// Whether a (non-deleted) `Create` node for `path` is still queued —
    /// i.e. the cloud has never heard of this file.
    pub fn has_pending_create(&self, path: &str) -> bool {
        self.nodes
            .iter()
            .any(|n| !n.deleted && matches!(&n.kind, NodeKind::Create { path: p } if p == path))
    }

    /// Marks `ids` deleted with a backindex to `target` (the node standing
    /// where the deleting operation would have been appended under FIFO).
    /// Unknown ids are ignored.
    pub fn delete_nodes(&mut self, ids: &[u64], target: u64) {
        for node in &mut self.nodes {
            if ids.contains(&node.id) {
                node.deleted = true;
                node.backindex = Some(target);
                if let NodeKind::Write { path, packed, .. } = &mut node.kind {
                    *packed = true;
                    if self.write_index.get(path.as_str()) == Some(&node.id) {
                        self.write_index.remove(path.as_str());
                    }
                }
            }
        }
    }

    /// Computes transaction groups over the queued nodes.
    fn groups(&self) -> Vec<(usize, usize)> {
        let (a, b) = self.nodes.as_slices();
        if b.is_empty() {
            group_spans(a)
        } else {
            let all: Vec<Node> = self.nodes.iter().cloned().collect();
            group_spans(&all)
        }
    }

    fn node_ready(&self, node: &Node, now: SimTime) -> bool {
        node.deleted || now.since(node.last_touched) >= self.delay_ms
    }

    /// Releases, from the front, every transaction group whose nodes have
    /// all aged past the upload delay. Stops at the first group that is
    /// not fully ready (strict FIFO between groups).
    pub fn pop_ready(&mut self, now: SimTime) -> Vec<Vec<Node>> {
        let groups = self.groups();
        let mut take = 0usize;
        for (start, end) in groups {
            let all_ready = (start..=end).all(|i| self.node_ready(&self.nodes[i], now));
            if all_ready {
                take = end + 1;
            } else {
                break;
            }
        }
        self.take_front(take)
    }

    /// Releases everything unconditionally (end of experiment / shutdown).
    pub fn pop_all(&mut self) -> Vec<Vec<Node>> {
        self.take_front(self.nodes.len())
    }

    fn take_front(&mut self, count: usize) -> Vec<Vec<Node>> {
        if count == 0 {
            return Vec::new();
        }
        let mut popped: Vec<Node> = Vec::with_capacity(count);
        for _ in 0..count {
            let node = self.nodes.pop_front().expect("count bounded by len");
            if let NodeKind::Write { path, .. } = &node.kind {
                if self.write_index.get(path.as_str()) == Some(&node.id) {
                    self.write_index.remove(path.as_str());
                }
            }
            popped.push(node);
        }
        // Re-split the popped prefix into its transaction groups.
        let spans = group_spans(&popped);
        let mut out: Vec<Vec<Node>> = Vec::with_capacity(spans.len());
        let mut it = popped.into_iter();
        for (start, end) in spans {
            out.push(it.by_ref().take(end - start + 1).collect());
        }
        out
    }
}

/// Merges each run of strictly adjacent `Write` ops — `next.offset ==
/// prev.offset + prev.data.len()` — into one op carrying the concatenated
/// data. Non-write ops and non-adjacent writes break a run; op order is
/// preserved, and the byte image the sequence produces is unchanged.
fn coalesce_adjacent_writes(ops: &mut Vec<FileOpItem>) {
    let mut out: Vec<FileOpItem> = Vec::with_capacity(ops.len());
    for op in ops.drain(..) {
        if let (
            Some(FileOpItem::Write {
                offset: prev_offset,
                data: prev_data,
            }),
            FileOpItem::Write { offset, data },
        ) = (out.last_mut(), &op)
        {
            if *prev_offset + prev_data.len() as u64 == *offset {
                let mut merged = Vec::with_capacity(prev_data.len() + data.len());
                merged.extend_from_slice(prev_data);
                merged.extend_from_slice(data);
                *prev_data = Payload::from(merged);
                continue;
            }
        }
        out.push(op);
    }
    *ops = out;
}

/// Maximal runs of nodes connected by (merged) backindex spans: each node
/// at position `p` contributes the interval `[p, pos(backindex)]`;
/// overlapping intervals merge. Returns inclusive `(start, end)` position
/// pairs covering `nodes` in order.
fn group_spans(nodes: &[Node]) -> Vec<(usize, usize)> {
    let mut pos_of: HashMap<u64, usize> = HashMap::with_capacity(nodes.len());
    for (i, n) in nodes.iter().enumerate() {
        pos_of.insert(n.id, i);
    }
    let mut groups = Vec::new();
    let mut i = 0;
    while i < nodes.len() {
        let mut end = i;
        let mut j = i;
        while j <= end {
            if let Some(bi) = nodes[j].backindex {
                if let Some(&t) = pos_of.get(&bi) {
                    end = end.max(t);
                }
            }
            j += 1;
        }
        groups.push((i, end));
        i = end + 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(offset: u64, data: &'static [u8]) -> FileOpItem {
        FileOpItem::Write {
            offset,
            data: Payload::from_static(data),
        }
    }

    fn push_write(q: &mut SyncQueue, path: &str, op: FileOpItem, now: SimTime) -> u64 {
        match q.append_write(path, op.clone(), now) {
            Some(id) => id,
            None => q.push(
                NodeKind::Write {
                    path: path.into(),
                    ops: vec![op],
                    packed: false,
                },
                None,
                None,
                now,
            ),
        }
    }

    #[test]
    fn writes_to_same_file_batch_into_one_node() {
        let mut q = SyncQueue::new(3000);
        let id1 = push_write(&mut q, "/f", w(0, b"aa"), SimTime(0));
        let id2 = push_write(&mut q, "/f", w(2, b"bb"), SimTime(10));
        assert_eq!(id1, id2);
        assert_eq!(q.len(), 1);
        let first = q.iter().next().unwrap();
        match &first.kind {
            NodeKind::Write { ops, .. } => assert_eq!(ops.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn packed_node_no_longer_batches() {
        let mut q = SyncQueue::new(3000);
        push_write(&mut q, "/f", w(0, b"aa"), SimTime(0));
        q.pack("/f");
        let id2 = push_write(&mut q, "/f", w(0, b"bb"), SimTime(10));
        assert_eq!(q.len(), 2);
        assert!(q.iter().any(|n| n.id == id2));
    }

    #[test]
    fn pack_coalesces_adjacent_writes() {
        let mut q = SyncQueue::new(3000);
        // Sequential writer: 0..2, 2..4, 4..6 — then a gap, then 10..12.
        push_write(&mut q, "/f", w(0, b"aa"), SimTime(0));
        push_write(&mut q, "/f", w(2, b"bb"), SimTime(1));
        push_write(&mut q, "/f", w(4, b"cc"), SimTime(2));
        push_write(&mut q, "/f", w(10, b"dd"), SimTime(3));
        q.pack("/f");
        let node = q.iter().next().unwrap();
        match &node.kind {
            NodeKind::Write { ops, packed, .. } => {
                assert!(*packed);
                assert_eq!(
                    ops,
                    &vec![w(0, b"aabbcc"), w(10, b"dd")],
                    "adjacent run merged, gapped write kept separate"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn coalescing_stops_at_non_write_ops() {
        let mut q = SyncQueue::new(3000);
        push_write(&mut q, "/f", w(0, b"aa"), SimTime(0));
        q.append_write("/f", FileOpItem::Truncate { size: 2 }, SimTime(1));
        push_write(&mut q, "/f", w(2, b"bb"), SimTime(2));
        q.pack("/f");
        let node = q.iter().next().unwrap();
        match &node.kind {
            NodeKind::Write { ops, .. } => {
                assert_eq!(ops.len(), 3, "truncate must break the run");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn coalescing_only_merges_exact_adjacency() {
        // Overlapping writes (offset < prev end) must NOT merge: the later
        // write overwrites part of the earlier one, and concatenation
        // would corrupt the replayed image.
        let mut q = SyncQueue::new(3000);
        push_write(&mut q, "/f", w(0, b"aaaa"), SimTime(0));
        push_write(&mut q, "/f", w(2, b"bb"), SimTime(1));
        q.pack("/f");
        let node = q.iter().next().unwrap();
        match &node.kind {
            NodeKind::Write { ops, .. } => {
                assert_eq!(ops, &vec![w(0, b"aaaa"), w(2, b"bb")]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodes_wait_for_upload_delay() {
        let mut q = SyncQueue::new(3000);
        push_write(&mut q, "/f", w(0, b"aa"), SimTime(0));
        assert!(q.pop_ready(SimTime(2999)).is_empty());
        let groups = q.pop_ready(SimTime(3000));
        assert_eq!(groups.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn batched_write_refreshes_delay() {
        let mut q = SyncQueue::new(3000);
        push_write(&mut q, "/f", w(0, b"aa"), SimTime(0));
        push_write(&mut q, "/f", w(2, b"bb"), SimTime(2000));
        assert!(q.pop_ready(SimTime(3001)).is_empty());
        assert_eq!(q.pop_ready(SimTime(5000)).len(), 1);
    }

    #[test]
    fn fifo_between_files() {
        let mut q = SyncQueue::new(1000);
        push_write(&mut q, "/a", w(0, b"a"), SimTime(0));
        push_write(&mut q, "/b", w(0, b"b"), SimTime(500));
        // /a is ready at 1000 but /b is not: only /a pops.
        let groups = q.pop_ready(SimTime(1200));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0][0].kind.path(), "/a");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batching_into_non_tail_node_sets_backindex_and_groups() {
        let mut q = SyncQueue::new(1000);
        push_write(&mut q, "/a", w(0, b"a1"), SimTime(0));
        push_write(&mut q, "/b", w(0, b"b1"), SimTime(0));
        // Batch another write into /a's node — /a's node is no longer at
        // the tail, so it must be applied transactionally with /b's.
        push_write(&mut q, "/a", w(2, b"a2"), SimTime(100));
        let node_a = q.iter().find(|n| n.kind.path() == "/a").unwrap();
        let node_b = q.iter().find(|n| n.kind.path() == "/b").unwrap();
        assert_eq!(node_a.backindex, Some(node_b.id));
        let groups = q.pop_ready(SimTime(5000));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn deleted_nodes_delimit_transactions() {
        // Paper's causality example: create a, create b, create c,
        // delete a (before upload). The deleted node's backindex to the
        // tail forces b and c into one atomic group with it.
        let mut q = SyncQueue::new(1000);
        let a = q.push(
            NodeKind::Create { path: "/a".into() },
            None,
            None,
            SimTime(0),
        );
        let _b = q.push(
            NodeKind::Create { path: "/b".into() },
            None,
            None,
            SimTime(0),
        );
        let c = q.push(
            NodeKind::Create { path: "/c".into() },
            None,
            None,
            SimTime(0),
        );
        q.delete_nodes(&[a], c);
        let groups = q.pop_ready(SimTime(5000));
        assert_eq!(groups.len(), 1);
        let live: Vec<&str> = groups[0]
            .iter()
            .filter(|n| !n.deleted)
            .map(|n| n.kind.path())
            .collect();
        assert_eq!(live, vec!["/b", "/c"]);
    }

    #[test]
    fn interleaved_backindex_spans_merge() {
        let mut q = SyncQueue::new(0);
        let n1 = q.push(
            NodeKind::Create { path: "/1".into() },
            None,
            None,
            SimTime(0),
        );
        let n2 = q.push(
            NodeKind::Create { path: "/2".into() },
            None,
            None,
            SimTime(0),
        );
        let n3 = q.push(
            NodeKind::Create { path: "/3".into() },
            None,
            None,
            SimTime(0),
        );
        let n4 = q.push(
            NodeKind::Create { path: "/4".into() },
            None,
            None,
            SimTime(0),
        );
        q.delete_nodes(&[n1], n3);
        q.delete_nodes(&[n2], n4);
        // Spans [1,3] and [2,4] interleave: one merged group of 4.
        let groups = q.pop_ready(SimTime(100));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn disjoint_spans_stay_separate_groups() {
        let mut q = SyncQueue::new(0);
        let n1 = q.push(
            NodeKind::Create { path: "/1".into() },
            None,
            None,
            SimTime(0),
        );
        let n2 = q.push(
            NodeKind::Create { path: "/2".into() },
            None,
            None,
            SimTime(0),
        );
        let _n3 = q.push(
            NodeKind::Create { path: "/3".into() },
            None,
            None,
            SimTime(0),
        );
        q.delete_nodes(&[n1], n2);
        let groups = q.pop_ready(SimTime(100));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn group_blocks_until_every_member_ready() {
        let mut q = SyncQueue::new(1000);
        let a = q.push(
            NodeKind::Create { path: "/a".into() },
            None,
            None,
            SimTime(0),
        );
        // A second node arrives late; deleting /a's node with a backindex
        // to it glues them together.
        let b = q.push(
            NodeKind::Create { path: "/b".into() },
            None,
            None,
            SimTime(900),
        );
        q.delete_nodes(&[a], b);
        // At t=1000, /a alone would be ready but /b is not: nothing pops.
        assert!(q.pop_ready(SimTime(1000)).is_empty());
        assert_eq!(q.pop_ready(SimTime(1900)).len(), 1);
    }

    #[test]
    fn pending_queries() {
        let mut q = SyncQueue::new(1000);
        q.push(
            NodeKind::Create { path: "/f".into() },
            None,
            None,
            SimTime(0),
        );
        push_write(&mut q, "/f", w(0, b"x"), SimTime(0));
        assert!(q.has_pending_create("/f"));
        assert_eq!(q.pending_ids_for_path("/f").len(), 2);
        assert!(!q.has_pending_create("/g"));
        let ids = q.pending_ids_for_path("/f");
        let tail = q.tail_id().unwrap();
        q.delete_nodes(&ids, tail);
        assert!(!q.has_pending_create("/f"));
        assert!(q.pending_ids_for_path("/f").is_empty());
    }

    #[test]
    fn pop_all_flushes_everything_in_order() {
        let mut q = SyncQueue::new(60_000);
        push_write(&mut q, "/a", w(0, b"a"), SimTime(0));
        q.pack("/a");
        push_write(&mut q, "/a", w(0, b"b"), SimTime(1));
        let groups = q.pop_all();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn write_after_pop_creates_fresh_node() {
        let mut q = SyncQueue::new(0);
        push_write(&mut q, "/f", w(0, b"a"), SimTime(0));
        q.pop_ready(SimTime(1));
        let id = push_write(&mut q, "/f", w(1, b"b"), SimTime(2));
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().next().unwrap().id, id);
    }
}
