//! The common harness interface all sync engines implement, plus
//! [`DeltaCfsSystem`] — a DeltaCFS client and cloud server wired to a
//! simulated link.
//!
//! The baseline engines in `deltacfs-baselines` (Dropbox-, Seafile-, NFS-
//! and Dropsync-like) implement the same [`SyncEngine`] trait, so the
//! trace-replay driver and every benchmark treat all five identically.

use deltacfs_delta::Cost;
use deltacfs_kvstore::KeyValue;
use deltacfs_net::{Link, LinkSpec, PlatformProfile, SimClock, SimTime, TrafficStats};
use deltacfs_vfs::{OpEvent, Vfs};

use crate::client::DeltaCfsClient;
use crate::codec::{CodecPolicy, WireCodec};
use crate::config::DeltaCfsConfig;
use crate::pipeline;
use crate::protocol::{ApplyOutcome, ClientId, UpdateMsg, ACK_WIRE_BYTES};
use crate::server::CloudServer;

/// Summary of an engine's resource usage after a run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine name ("deltacfs", "dropbox", ...).
    pub name: String,
    /// Client-side work counters.
    pub client_cost: Cost,
    /// Server-side work counters (`None` when the server is opaque, as
    /// for Dropbox in the paper).
    pub server_cost: Option<Cost>,
    /// Bytes and messages moved over the client↔cloud link.
    pub traffic: TrafficStats,
}

/// A sync engine driven by intercepted file-system events and a clock.
pub trait SyncEngine {
    /// Engine name, for reports.
    fn name(&self) -> &str;

    /// Feeds one intercepted operation.
    fn on_event(&mut self, event: &OpEvent, fs: &Vfs);

    /// Lets the engine act on the passage of time (debounce windows,
    /// upload delays, link availability).
    fn tick(&mut self, fs: &Vfs);

    /// Flushes all outstanding work (end of experiment).
    fn finish(&mut self, fs: &Vfs);

    /// Resource usage so far.
    fn report(&self) -> EngineReport;
}

/// A complete single-client DeltaCFS deployment: client engine, cloud
/// server, and the link between them.
#[derive(Debug)]
pub struct DeltaCfsSystem<K: KeyValue = deltacfs_kvstore::MemStore> {
    client: DeltaCfsClient<K>,
    server: CloudServer,
    link: Link,
    clock: SimClock,
    outcomes: Vec<ApplyOutcome>,
    obs: deltacfs_obs::Obs,
    wire_codec: WireCodec,
}

/// The upload-direction codec a config and link imply: adaptive when
/// `wire_compression` is on, a raw-passthrough otherwise. The platform
/// defaults to PC until [`DeltaCfsSystem::set_platform`] overrides it.
fn upload_codec(cfg: &DeltaCfsConfig, link_spec: LinkSpec) -> WireCodec {
    let policy = if cfg.wire_compression {
        CodecPolicy::Adaptive
    } else {
        CodecPolicy::Never
    };
    WireCodec::for_upload(policy, PlatformProfile::pc(), link_spec)
}

impl DeltaCfsSystem<deltacfs_kvstore::MemStore> {
    /// Creates a system with an in-memory checksum store.
    pub fn new(cfg: DeltaCfsConfig, clock: SimClock, link_spec: LinkSpec) -> Self {
        DeltaCfsSystem {
            client: DeltaCfsClient::new(ClientId(1), cfg, clock.clone()),
            server: CloudServer::new(),
            link: Link::new(link_spec),
            clock,
            outcomes: Vec::new(),
            obs: deltacfs_obs::Obs::new(),
            wire_codec: upload_codec(&cfg, link_spec),
        }
    }
}

impl<K: KeyValue> DeltaCfsSystem<K> {
    /// Creates a system with an explicit checksum-store backend.
    pub fn with_backend(
        cfg: DeltaCfsConfig,
        clock: SimClock,
        link_spec: LinkSpec,
        backend: K,
    ) -> Self {
        DeltaCfsSystem {
            client: DeltaCfsClient::with_backend(ClientId(1), cfg, clock.clone(), backend),
            server: CloudServer::new(),
            link: Link::new(link_spec),
            clock,
            outcomes: Vec::new(),
            obs: deltacfs_obs::Obs::new(),
            wire_codec: upload_codec(&cfg, link_spec),
        }
    }

    /// Installs a shared observability bundle on the client engine (see
    /// [`DeltaCfsClient::set_obs`]).
    pub fn enable_observability(&mut self, obs: deltacfs_obs::Obs) {
        self.obs = obs.clone();
        self.wire_codec.attach_obs(&obs);
        self.client.set_obs(obs);
    }

    /// Declares which platform this client runs on: the wire codec's
    /// cost model charges that platform's compression CPU, and the link
    /// charges the same work as simulated time on codec-tagged parts.
    pub fn set_platform(&mut self, profile: PlatformProfile) {
        self.wire_codec.set_profile(profile);
        self.link.set_compute(profile);
    }

    /// The upload-direction wire codec's own work accumulator
    /// (compression CPU; kept out of the client [`Cost`] so raw and
    /// compressed runs report identical client/server totals).
    pub fn codec_cost(&self) -> Cost {
        self.wire_codec.cost()
    }

    /// Overrides the wire codec's decision policy. Property tests use
    /// this to force arbitrary compress/raw schedules through a stream;
    /// production code configures the codec through
    /// [`DeltaCfsConfig::wire_compression`] instead.
    #[doc(hidden)]
    pub fn set_codec_policy(&mut self, policy: CodecPolicy) {
        self.wire_codec.set_policy(policy);
    }

    /// The client engine.
    pub fn client(&self) -> &DeltaCfsClient<K> {
        &self.client
    }

    /// Mutable access to the client engine.
    pub fn client_mut(&mut self) -> &mut DeltaCfsClient<K> {
        &mut self.client
    }

    /// The cloud server.
    pub fn server(&self) -> &CloudServer {
        &self.server
    }

    /// Apply outcomes observed so far (conflicts, rejections).
    pub fn outcomes(&self) -> &[ApplyOutcome] {
        &self.outcomes
    }

    /// Uploads every ready transaction group to the cloud.
    fn upload_ready(&mut self, fs: &Vfs, flush: bool) {
        let groups = if flush {
            self.client.flush(fs)
        } else {
            self.client.tick(fs)
        };
        let now = self.clock.now();
        let cfg = *self.client.config();
        for group in groups {
            if cfg.streaming && group.iter().all(|m| m.group.is_some()) {
                self.upload_group_streaming(&group, &cfg, now);
            } else {
                let wire: u64 = group.iter().map(|m| m.wire_size()).sum();
                let busy_before = self.link.upload_busy_until();
                let arrival = self.link.upload(wire, now);
                if self.obs.spans.enabled() {
                    if let Some(gid) = group.first().and_then(|m| m.group) {
                        let key = gid.span_key();
                        self.obs.spans.record(
                            key,
                            "link",
                            "wire.upload",
                            now.max(busy_before).as_millis(),
                            arrival.as_millis(),
                            None,
                            || format!("{wire} wire bytes (materialized)"),
                        );
                        let a = arrival.as_millis();
                        self.obs.spans.record(key, "server", "server.apply", a, a, None, || {
                            format!("{} msg(s)", group.len())
                        });
                    }
                }
                let outcomes = self.server.apply_txn(&group);
                self.outcomes.extend(outcomes);
                // Acknowledgement.
                self.link.download(ACK_WIRE_BYTES, now);
            }
        }
    }

    /// Streams one group as bounded chunk frames: an encoder thread
    /// frames messages (scatter-gather, shared payloads) into the
    /// pipeline's bounded channel while this thread uploads each frame
    /// and feeds the server's chunk stage; the server commits the group
    /// atomically on the final frame. Traffic totals match the
    /// materialized path exactly — the frames' accounted bytes sum to
    /// `Σ wire_size()` and the message latency is charged once per
    /// group, as `Link::upload` would.
    fn upload_group_streaming(&mut self, group: &[UpdateMsg], cfg: &DeltaCfsConfig, now: SimTime) {
        let link = &mut self.link;
        let server = &mut self.server;
        let outcomes = &mut self.outcomes;
        let codec = &mut self.wire_codec;
        let at_ms = now.as_millis();
        let spans = self.obs.spans.clone();
        let span_on = spans.enabled();
        let gkey = group.iter().find_map(|m| m.group).map(|g| g.span_key());
        let mut stage_first_ms: Option<u64> = None;
        pipeline::run_pipeline(
            pipeline::PipelineConfig {
                chunk_budget: cfg.chunk_budget,
                pipeline_depth: cfg.pipeline_depth,
            },
            pipeline::Pace::Immediate,
            now,
            &self.obs,
            |sender| {
                pipeline::frame_group(group, cfg.chunk_budget, |frame| {
                    sender.send(codec.encode_frame(frame, at_ms));
                });
            },
            |frame, ready| {
                let busy_before = link.upload_busy_until();
                let done = link.upload_part_codec(frame.accounted, frame.compressed_from(), ready);
                if span_on {
                    if let Some(key) = gkey {
                        spans.record(
                            key,
                            "link",
                            "wire.upload",
                            ready.max(busy_before).as_millis(),
                            done.as_millis(),
                            None,
                            || {
                                format!(
                                    "msg {} chunk {}: {} wire bytes",
                                    frame.msg_idx, frame.chunk_idx, frame.accounted
                                )
                            },
                        );
                        if stage_first_ms.is_none() {
                            stage_first_ms = Some(done.as_millis());
                        }
                    }
                }
                if let Some(out) = server
                    .receive_chunk(&frame)
                    .expect("in-process chunk stream cannot be malformed")
                {
                    if span_on {
                        if let Some(key) = gkey {
                            let d = done.as_millis();
                            spans.record(key, "server", "server.stage", d, d, None, || {
                                format!(
                                    "committed after a {}ms staging window",
                                    d - stage_first_ms.unwrap_or(d)
                                )
                            });
                            spans.record(key, "server", "server.apply", d, d, None, || {
                                format!("{} outcome(s)", out.len())
                            });
                        }
                    }
                    outcomes.extend(out);
                }
                done
            },
        );
        let busy_before_end = link.upload_busy_until();
        let end_done = link.upload_end_msg(now);
        if span_on {
            if let Some(key) = gkey {
                spans.record(
                    key,
                    "link",
                    "wire.upload",
                    now.max(busy_before_end).as_millis(),
                    end_done.as_millis(),
                    None,
                    || "end-of-message latency".into(),
                );
            }
        }
        // Acknowledgement.
        link.download(ACK_WIRE_BYTES, now);
    }
}

impl<K: KeyValue> SyncEngine for DeltaCfsSystem<K> {
    fn name(&self) -> &str {
        "deltacfs"
    }

    fn on_event(&mut self, event: &OpEvent, fs: &Vfs) {
        self.client.handle_event(event, fs);
    }

    fn tick(&mut self, fs: &Vfs) {
        self.upload_ready(fs, false);
    }

    fn finish(&mut self, fs: &Vfs) {
        self.upload_ready(fs, true);
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            name: self.name().to_string(),
            client_cost: self.client.cost(),
            server_cost: Some(self.server.cost()),
            traffic: self.link.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_sync_through_the_trait() {
        let clock = SimClock::new();
        let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/f").unwrap();
        fs.write("/f", 0, b"payload").unwrap();
        for e in fs.drain_events() {
            sys.on_event(&e, &fs);
        }
        clock.advance(4000);
        sys.tick(&fs);
        assert_eq!(sys.server().file("/f"), Some(&b"payload"[..]));
        let report = sys.report();
        assert!(report.traffic.bytes_up > 7);
        assert!(report.server_cost.is_some());
    }

    #[test]
    fn parallelism_does_not_change_cost_or_traffic() {
        // The parallel delta path is documented to be byte-identical to
        // the sequential one; at the engine level that means the worker
        // count may change wall-clock time but never cost counters,
        // uploaded bytes, or the synced content.
        let run = |workers: usize| {
            let clock = SimClock::new();
            let cfg = DeltaCfsConfig::new()
                .with_parallelism(workers)
                .with_min_parallel_bytes(0);
            let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
            let mut fs = Vfs::new();
            fs.enable_event_log();
            fs.create("/f").unwrap();
            let base: Vec<u8> = (0..20_000u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
            fs.write("/f", 0, &base).unwrap();
            for e in fs.drain_events() {
                sys.on_event(&e, &fs);
            }
            clock.advance(4000);
            sys.tick(&fs);
            // In-place update over more than half the file: upload goes
            // through local delta encoding against the undo-log base.
            let edit = vec![0xAB; 12_000];
            fs.write("/f", 100, &edit).unwrap();
            for e in fs.drain_events() {
                sys.on_event(&e, &fs);
            }
            clock.advance(4000);
            sys.finish(&fs);
            let r = sys.report();
            (
                r.client_cost,
                r.traffic.bytes_up,
                sys.server().file("/f").map(<[u8]>::to_vec),
            )
        };
        let (cost1, up1, file1) = run(1);
        let (cost4, up4, file4) = run(4);
        assert_eq!(cost1, cost4, "cost must not depend on worker count");
        assert_eq!(up1, up4, "traffic must not depend on worker count");
        assert_eq!(file1, file4);
        assert!(file1.is_some());
    }

    #[test]
    fn streaming_upload_matches_materialized_traffic_and_state() {
        // The streaming pipeline is an implementation detail of the
        // upload: same traffic totals, same costs, same cloud state.
        let run = |streaming: bool| {
            let clock = SimClock::new();
            let cfg = DeltaCfsConfig::new()
                .with_streaming(streaming)
                .with_chunk_budget(512)
                .with_pipeline_depth(2);
            let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
            let mut fs = Vfs::new();
            fs.enable_event_log();
            fs.create("/f").unwrap();
            let base: Vec<u8> = (0..30_000u32)
                .map(|i| (i.wrapping_mul(17) % 250) as u8)
                .collect();
            fs.write("/f", 0, &base).unwrap();
            fs.create("/small").unwrap();
            fs.write("/small", 0, b"tiny file").unwrap();
            for e in fs.drain_events() {
                sys.on_event(&e, &fs);
            }
            clock.advance(4000);
            sys.tick(&fs);
            // An in-place rewrite large enough to go through the local
            // delta path, so the streamed group carries a Delta payload.
            let edit = vec![0x5A; 16_000];
            fs.write("/f", 200, &edit).unwrap();
            fs.rename("/small", "/renamed").unwrap();
            for e in fs.drain_events() {
                sys.on_event(&e, &fs);
            }
            clock.advance(4000);
            sys.finish(&fs);
            let r = sys.report();
            (
                r.traffic,
                r.client_cost,
                sys.server().file("/f").map(<[u8]>::to_vec),
                sys.server().file("/renamed").map(<[u8]>::to_vec),
                sys.outcomes().to_vec(),
            )
        };
        let materialized = run(false);
        let streamed = run(true);
        assert_eq!(streamed, materialized);
        assert!(streamed.2.is_some());
        assert_eq!(streamed.3.as_deref(), Some(&b"tiny file"[..]));
    }

    #[test]
    fn finish_flushes_pending_nodes() {
        let clock = SimClock::new();
        let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/late").unwrap();
        for e in fs.drain_events() {
            sys.on_event(&e, &fs);
        }
        // No clock advance: tick would upload nothing.
        sys.tick(&fs);
        assert!(sys.server().file("/late").is_none());
        sys.finish(&fs);
        assert!(sys.server().file("/late").is_some());
    }
}
