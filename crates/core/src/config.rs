/// How causal consistency is preserved across the sync queue's
/// out-of-FIFO optimisations (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CausalMode {
    /// The paper's design: backindex pointers group the affected nodes
    /// into transactions; everything else uploads at its own pace.
    Backindex,
    /// Ablation: strict FIFO with the optimisations disabled — no delta
    /// supersession, no elision. Causality is trivial, traffic suffers.
    StrictFifo,
    /// The ViewBox-style alternative the paper rejects: seal the whole
    /// queue every `interval_ms` and upload it as one transaction. Both
    /// of the paper's objections are observable: a save spanning a seal
    /// loses its delta optimisation, and the interval trades freshness
    /// against transaction bulk.
    Snapshot {
        /// Time between snapshots, in milliseconds.
        interval_ms: u64,
    },
}

/// Tuning knobs for a DeltaCFS client.
///
/// Defaults follow the paper: 3 s sync-queue upload delay (Fig. 6), 2 s
/// relation-entry timeout (Table I), 4 KB delta/checksum blocks, and a
/// 50 % changed-fraction threshold for delta-compressing in-place updates
/// (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaCfsConfig {
    /// How long a sync-queue node waits before upload, in milliseconds.
    pub upload_delay_ms: u64,
    /// Relation-table entry lifetime, in milliseconds (paper: 1–3 s).
    pub relation_timeout_ms: u64,
    /// Block size for delta encoding and the checksum store.
    pub block_size: usize,
    /// If an in-place update has modified more than this fraction of a
    /// file when its node is uploaded, try compressing the update with
    /// local delta encoding against the undo-log reconstruction.
    pub inplace_delta_threshold: f64,
    /// Unlinked files larger than this are not preserved for the relation
    /// table (the paper's ENOSPC escape hatch).
    pub preserve_limit: u64,
    /// Maintain the block-checksum store (DeltaCFSc in Table III).
    pub checksums: bool,
    /// Causal-consistency strategy (see [`CausalMode`]).
    pub causal_mode: CausalMode,
    /// Worker threads for delta encoding. Defaults to the number of
    /// available cores; `1` selects the sequential path. The parallel
    /// path produces byte-identical deltas and identical [`Cost`]
    /// totals regardless of the thread count, so this knob trades only
    /// wall-clock time, never output.
    ///
    /// [`Cost`]: deltacfs_delta::Cost
    pub parallelism: usize,
}

impl DeltaCfsConfig {
    /// The paper's configuration.
    pub fn new() -> Self {
        DeltaCfsConfig {
            upload_delay_ms: 3_000,
            relation_timeout_ms: 2_000,
            block_size: 4096,
            inplace_delta_threshold: 0.5,
            preserve_limit: 256 * 1024 * 1024,
            checksums: true,
            causal_mode: CausalMode::Backindex,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Disables the checksum store (the plain `DeltaCFS` row of
    /// Table III).
    pub fn without_checksums(mut self) -> Self {
        self.checksums = false;
        self
    }

    /// Selects a causal-consistency strategy (ablations; the default is
    /// the paper's backindex design).
    pub fn with_causal_mode(mut self, mode: CausalMode) -> Self {
        self.causal_mode = mode;
        self
    }

    /// Sets the delta-encoding worker-thread count (`1` = sequential).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "parallelism must be at least 1");
        self.parallelism = workers;
        self
    }
}

impl Default for DeltaCfsConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DeltaCfsConfig::new();
        assert_eq!(c.upload_delay_ms, 3_000);
        assert_eq!(c.relation_timeout_ms, 2_000);
        assert_eq!(c.block_size, 4096);
        assert!(c.checksums);
        assert!(!c.without_checksums().checksums);
        assert!(c.parallelism >= 1, "defaults to available cores, >= 1");
    }

    #[test]
    fn parallelism_builder() {
        assert_eq!(DeltaCfsConfig::new().with_parallelism(4).parallelism, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_parallelism_rejected() {
        let _ = DeltaCfsConfig::new().with_parallelism(0);
    }
}
