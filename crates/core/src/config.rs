/// How causal consistency is preserved across the sync queue's
/// out-of-FIFO optimisations (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CausalMode {
    /// The paper's design: backindex pointers group the affected nodes
    /// into transactions; everything else uploads at its own pace.
    Backindex,
    /// Ablation: strict FIFO with the optimisations disabled — no delta
    /// supersession, no elision. Causality is trivial, traffic suffers.
    StrictFifo,
    /// The ViewBox-style alternative the paper rejects: seal the whole
    /// queue every `interval_ms` and upload it as one transaction. Both
    /// of the paper's objections are observable: a save spanning a seal
    /// loses its delta optimisation, and the interval trades freshness
    /// against transaction bulk.
    Snapshot {
        /// Time between snapshots, in milliseconds.
        interval_ms: u64,
    },
}

/// Tuning knobs for a DeltaCFS client.
///
/// Defaults follow the paper: 3 s sync-queue upload delay (Fig. 6), 2 s
/// relation-entry timeout (Table I), 4 KB delta/checksum blocks, and a
/// 50 % changed-fraction threshold for delta-compressing in-place updates
/// (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaCfsConfig {
    /// How long a sync-queue node waits before upload, in milliseconds.
    pub upload_delay_ms: u64,
    /// Relation-table entry lifetime, in milliseconds (paper: 1–3 s).
    pub relation_timeout_ms: u64,
    /// Block size for delta encoding and the checksum store.
    pub block_size: usize,
    /// If an in-place update has modified more than this fraction of a
    /// file when its node is uploaded, try compressing the update with
    /// local delta encoding against the undo-log reconstruction.
    pub inplace_delta_threshold: f64,
    /// Unlinked files larger than this are not preserved for the relation
    /// table (the paper's ENOSPC escape hatch).
    pub preserve_limit: u64,
    /// Maintain the block-checksum store (DeltaCFSc in Table III).
    pub checksums: bool,
    /// Causal-consistency strategy (see [`CausalMode`]).
    pub causal_mode: CausalMode,
    /// Worker threads for delta encoding. Defaults to the number of
    /// available cores; `1` selects the sequential path. The parallel
    /// path produces byte-identical deltas and identical [`Cost`]
    /// totals regardless of the thread count, so this knob trades only
    /// wall-clock time, never output.
    ///
    /// [`Cost`]: deltacfs_delta::Cost
    pub parallelism: usize,
    /// New-file sizes below this use the sequential delta matcher even
    /// when [`parallelism`](DeltaCfsConfig::parallelism) is higher:
    /// per-segment seam overhead beats the parallel win on small inputs
    /// (BENCH_3 measured 0.76–0.84x at 4 MiB). Threaded into
    /// [`DeltaParams::min_parallel_bytes`]; output and cost are
    /// unaffected either way.
    ///
    /// [`DeltaParams::min_parallel_bytes`]: deltacfs_delta::DeltaParams
    pub min_parallel_bytes: usize,
    /// Upload transaction groups as a stream of bounded chunk frames
    /// (scatter-gather wire framing, encode→upload overlap) instead of
    /// one materialized buffer per group. Off by default; traffic
    /// totals, costs, and server state are identical either way.
    pub streaming: bool,
    /// Literal-byte budget per streamed chunk frame (see
    /// [`ChunkSink`](deltacfs_delta::ChunkSink)).
    pub chunk_budget: usize,
    /// Depth of the bounded encoder→uploader channel; together with
    /// [`chunk_budget`](DeltaCfsConfig::chunk_budget) it caps the bytes
    /// in flight between the delta encoder and the wire.
    pub pipeline_depth: usize,
    /// Run streamed chunk frames through the adaptive wire codec: a
    /// cost-benefit controller compresses a frame when the link's
    /// byte savings beat the platform's compression CPU, and ships it
    /// raw otherwise (never worse than raw — an incompressible frame
    /// crosses the wire byte-identical to a codec-less run). Off by
    /// default; applied content, costs, and outcomes are identical
    /// either way, only traffic and timing improve.
    pub wire_compression: bool,
    /// Hierarchical coarse→fine delta matching for huge files: a
    /// content-defined shingle tree pairs identical old/new spans
    /// wholesale so only divergent leaf ranges reach the byte-level
    /// walk. On by default; deltas and [`Cost`] totals are byte-identical
    /// to the plain matcher by contract, only wall-clock time and the
    /// `hierarchy_*` metrics change.
    ///
    /// [`Cost`]: deltacfs_delta::Cost
    pub hierarchy: bool,
    /// Shingle-tree fan-out: how many coarse→fine levels (1–3) the
    /// hierarchical matcher descends through.
    pub hierarchy_levels: usize,
    /// New-file sizes below this take the plain matcher even when
    /// [`hierarchy`](DeltaCfsConfig::hierarchy) is on — the huge-file
    /// analogue of
    /// [`min_parallel_bytes`](DeltaCfsConfig::min_parallel_bytes)
    /// (small files never pay the shingle-tree overhead).
    pub hierarchy_min_bytes: usize,
}

impl DeltaCfsConfig {
    /// The paper's configuration.
    pub fn new() -> Self {
        DeltaCfsConfig {
            upload_delay_ms: 3_000,
            relation_timeout_ms: 2_000,
            block_size: 4096,
            inplace_delta_threshold: 0.5,
            preserve_limit: 256 * 1024 * 1024,
            checksums: true,
            causal_mode: CausalMode::Backindex,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            min_parallel_bytes: deltacfs_delta::DeltaParams::DEFAULT_MIN_PARALLEL_BYTES,
            streaming: false,
            chunk_budget: 256 * 1024,
            pipeline_depth: 4,
            wire_compression: false,
            hierarchy: true,
            hierarchy_levels: 2,
            hierarchy_min_bytes: deltacfs_delta::HierarchyParams::DEFAULT_MIN_FILE_BYTES,
        }
    }

    /// Enables or disables hierarchical matching for huge files.
    pub fn with_hierarchy(mut self, on: bool) -> Self {
        self.hierarchy = on;
        self
    }

    /// Sets the shingle-tree level fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not in `1..=3`.
    pub fn with_hierarchy_levels(mut self, levels: usize) -> Self {
        assert!(
            (1..=deltacfs_delta::hierarchy::MAX_LEVELS).contains(&levels),
            "hierarchy levels must be 1..=3"
        );
        self.hierarchy_levels = levels;
        self
    }

    /// Overrides the hierarchical-matching size floor (`0` engages the
    /// shingle tree on any input; tests use this).
    pub fn with_hierarchy_min_bytes(mut self, bytes: usize) -> Self {
        self.hierarchy_min_bytes = bytes;
        self
    }

    /// The [`HierarchyParams`](deltacfs_delta::HierarchyParams) these
    /// knobs select, or `None` when hierarchy is off.
    pub fn hierarchy_params(&self) -> Option<deltacfs_delta::HierarchyParams> {
        self.hierarchy.then(|| {
            deltacfs_delta::HierarchyParams::with_levels(self.hierarchy_levels)
                .with_min_file_bytes(self.hierarchy_min_bytes)
        })
    }

    /// Disables the checksum store (the plain `DeltaCFS` row of
    /// Table III).
    pub fn without_checksums(mut self) -> Self {
        self.checksums = false;
        self
    }

    /// Selects a causal-consistency strategy (ablations; the default is
    /// the paper's backindex design).
    pub fn with_causal_mode(mut self, mode: CausalMode) -> Self {
        self.causal_mode = mode;
        self
    }

    /// Sets the delta-encoding worker-thread count (`1` = sequential).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "parallelism must be at least 1");
        self.parallelism = workers;
        self
    }

    /// Overrides the sequential-fallback size threshold for parallel
    /// delta encoding (`0` forces the parallel path whenever
    /// `parallelism > 1`; tests use this to keep coverage on small
    /// inputs).
    pub fn with_min_parallel_bytes(mut self, bytes: usize) -> Self {
        self.min_parallel_bytes = bytes;
        self
    }

    /// Enables the streaming upload pipeline.
    pub fn with_streaming(mut self, on: bool) -> Self {
        self.streaming = on;
        self
    }

    /// Sets the per-chunk literal budget for streamed uploads.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_chunk_budget(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "chunk budget must be positive");
        self.chunk_budget = bytes;
        self
    }

    /// Sets the bounded encoder→uploader channel depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "pipeline depth must be positive");
        self.pipeline_depth = depth;
        self
    }

    /// Enables the adaptive wire codec on streamed chunk frames.
    pub fn with_wire_compression(mut self, on: bool) -> Self {
        self.wire_compression = on;
        self
    }
}

impl Default for DeltaCfsConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Hub-level tuning knobs (the server side of the simulation; per-client
/// knobs live in [`DeltaCfsConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubConfig {
    /// Number of server shards. `1` reproduces the single-instance hub
    /// byte for byte; higher counts stripe the replay index,
    /// group-outcome records, and persisted state by namespace.
    pub shards: usize,
    /// Record per-group apply latency into the
    /// `hub_apply_latency_us` observability histogram. Off by default:
    /// wall-clock timing is nondeterministic, and the deterministic
    /// tests compare metric snapshots.
    pub latency_histogram: bool,
    /// Record causal per-group spans (the critical-path sync profiler's
    /// input). Off by default: every span site then costs one relaxed
    /// atomic load. When on, `enable_observability` turns the shared
    /// span recorder on even if the bundle was built tracing-only, and
    /// `export_metrics` folds the profiler's per-stage histograms and
    /// SLO lag gauges into the unified snapshot.
    pub profiling: bool,
}

impl HubConfig {
    /// The single-shard legacy configuration.
    pub fn new() -> Self {
        HubConfig {
            shards: 1,
            latency_histogram: false,
            profiling: false,
        }
    }

    /// Sets the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a hub needs at least one shard");
        self.shards = shards;
        self
    }

    /// Enables the wall-clock apply-latency histogram.
    pub fn with_latency_histogram(mut self, on: bool) -> Self {
        self.latency_histogram = on;
        self
    }

    /// Enables causal span recording and the critical-path profiler.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }
}

impl Default for HubConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DeltaCfsConfig::new();
        assert_eq!(c.upload_delay_ms, 3_000);
        assert_eq!(c.relation_timeout_ms, 2_000);
        assert_eq!(c.block_size, 4096);
        assert!(c.checksums);
        assert!(!c.without_checksums().checksums);
        assert!(c.parallelism >= 1, "defaults to available cores, >= 1");
        assert!(!c.streaming, "streaming is opt-in");
        assert_eq!(c.chunk_budget, 256 * 1024);
        assert_eq!(c.pipeline_depth, 4);
        assert_eq!(c.min_parallel_bytes, 8 << 20);
        assert!(!c.wire_compression, "the wire codec is opt-in");
        assert!(c.with_wire_compression(true).wire_compression);
        assert!(c.hierarchy, "hierarchical matching defaults on");
        assert_eq!(c.hierarchy_levels, 2);
        assert_eq!(c.hierarchy_min_bytes, 64 << 20);
        let h = c.hierarchy_params().expect("hierarchy params");
        assert_eq!(h.min_file_bytes, 64 << 20);
        assert_eq!(h.level_params().count(), 2);
        assert!(c.with_hierarchy(false).hierarchy_params().is_none());
    }

    #[test]
    fn hierarchy_builders() {
        let c = DeltaCfsConfig::new()
            .with_hierarchy_levels(3)
            .with_hierarchy_min_bytes(0);
        assert_eq!(c.hierarchy_params().unwrap().level_params().count(), 3);
        assert_eq!(c.hierarchy_min_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "hierarchy levels")]
    fn zero_hierarchy_levels_rejected() {
        let _ = DeltaCfsConfig::new().with_hierarchy_levels(0);
    }

    #[test]
    fn streaming_builders() {
        let c = DeltaCfsConfig::new()
            .with_streaming(true)
            .with_chunk_budget(4096)
            .with_pipeline_depth(2)
            .with_min_parallel_bytes(0);
        assert!(c.streaming);
        assert_eq!(c.chunk_budget, 4096);
        assert_eq!(c.pipeline_depth, 2);
        assert_eq!(c.min_parallel_bytes, 0);
    }

    #[test]
    fn parallelism_builder() {
        assert_eq!(DeltaCfsConfig::new().with_parallelism(4).parallelism, 4);
    }

    #[test]
    fn hub_profiling_is_opt_in() {
        let h = HubConfig::new();
        assert!(!h.profiling, "span recording is opt-in");
        assert!(h.with_profiling(true).profiling);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_parallelism_rejected() {
        let _ = DeltaCfsConfig::new().with_parallelism(0);
    }
}
