//! The relation table (paper §III-A, Table I).
//!
//! The table tracks transformations of file *names*: each entry is a tuple
//! `src → dst` meaning "the file that used to be called `src` now survives
//! as `dst`". Entries are created by `rename` (the old version was
//! preserved under a new name) and by `unlink` (DeltaCFS temporarily
//! preserves the dying content instead of discarding it). When a file is
//! created whose name equals some entry's `src`, the update is a
//! transactional update in progress and delta encoding is triggered
//! between the new file and the entry's `dst`.
//!
//! Entries expire after a short timeout (1–3 s; a file update by the
//! operating system usually completes within a second), and are consumed
//! when they trigger.

use std::collections::HashMap;

use bytes::Bytes;
use deltacfs_net::SimTime;

/// Where a preserved old version of a file lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OldVersion {
    /// The old version still exists in the file system under this name
    /// (e.g. Word's `t0` after `rename f t0`).
    Path(String),
    /// The old version's bytes, preserved at unlink time (the paper moves
    /// the file into a `tmp/` area; we hold the dying inode's content).
    Content(Bytes),
}

/// A consumed relation-table entry: the preserved old version plus the
/// cloud version it corresponds to (captured at preservation time for
/// unlinked content; resolved by the caller for renamed paths).
#[derive(Debug, Clone, PartialEq)]
pub struct Preserved {
    /// Where the old content lives.
    pub old: OldVersion,
    /// The version the old content had, when known at preservation time.
    pub base_version: Option<crate::protocol::Version>,
}

#[derive(Debug, Clone)]
struct Entry {
    dst: OldVersion,
    base_version: Option<crate::protocol::Version>,
    created_at: SimTime,
}

/// The relation table: `src name → preserved old version`.
///
/// # Example
///
/// ```
/// use deltacfs_core::{OldVersion, RelationTable};
/// use deltacfs_net::SimTime;
///
/// // Word's save: rename f t0; ... ; rename t1 f.
/// let mut rt = RelationTable::new(2_000);
/// rt.on_rename("/f", "/t0", SimTime(0));
/// let hit = rt.take_match("/f", SimTime(500)).expect("trigger fires");
/// assert_eq!(hit.old, OldVersion::Path("/t0".into()));
/// ```
#[derive(Debug)]
pub struct RelationTable {
    entries: HashMap<String, Entry>,
    timeout_ms: u64,
}

impl RelationTable {
    /// Creates an empty table with the given entry timeout.
    pub fn new(timeout_ms: u64) -> Self {
        RelationTable {
            entries: HashMap::new(),
            timeout_ms,
        }
    }

    /// Records `rename src → dst`: the content once named `src` now lives
    /// at `dst`. The base version is resolved by the caller at trigger
    /// time (the renamed path keeps its version).
    pub fn on_rename(&mut self, src: &str, dst: &str, now: SimTime) {
        self.entries.insert(
            src.to_string(),
            Entry {
                dst: OldVersion::Path(dst.to_string()),
                base_version: None,
                created_at: now,
            },
        );
    }

    /// Records `unlink path` with the preserved content and the version
    /// the content had on the cloud.
    pub fn on_unlink(
        &mut self,
        path: &str,
        content: Bytes,
        base_version: Option<crate::protocol::Version>,
        now: SimTime,
    ) {
        self.entries.insert(
            path.to_string(),
            Entry {
                dst: OldVersion::Content(content),
                base_version,
                created_at: now,
            },
        );
    }

    /// If `name` matches a live entry's `src`, consumes the entry and
    /// returns the preserved old version — delta encoding should be
    /// triggered against it.
    pub fn take_match(&mut self, name: &str, now: SimTime) -> Option<Preserved> {
        match self.entries.get(name) {
            Some(e) if now.since(e.created_at) <= self.timeout_ms => {
                let e = self.entries.remove(name).expect("entry present");
                Some(Preserved {
                    old: e.dst,
                    base_version: e.base_version,
                })
            }
            Some(_) => {
                self.entries.remove(name);
                None
            }
            None => None,
        }
    }

    /// If the preserved old version of some entry lives at file `path`
    /// (i.e. an entry whose `dst` is `Path(path)`), invalidate that entry —
    /// the preserved copy was itself modified or removed, so it no longer
    /// represents the old version.
    pub fn invalidate_dst(&mut self, path: &str) {
        self.entries
            .retain(|_, e| e.dst != OldVersion::Path(path.to_string()));
    }

    /// Drops expired entries; returns how many were removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        let timeout = self.timeout_ms;
        self.entries
            .retain(|_, e| now.since(e.created_at) <= timeout);
        before - self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_pattern_triggers_on_recreate() {
        // rename f t0; ... ; rename t1 f  => entry f→t0 fires when f is
        // created again.
        let mut rt = RelationTable::new(2000);
        rt.on_rename("/f", "/t0", SimTime(0));
        assert_eq!(rt.len(), 1);
        let hit = rt.take_match("/f", SimTime(500)).unwrap();
        assert_eq!(hit.old, OldVersion::Path("/t0".into()));
        assert!(rt.is_empty());
        // Consumed: a second create does not fire.
        assert_eq!(rt.take_match("/f", SimTime(600)), None);
    }

    #[test]
    fn unlink_preserves_content() {
        let mut rt = RelationTable::new(2000);
        rt.on_unlink("/f", Bytes::from_static(b"old"), None, SimTime(0));
        match rt.take_match("/f", SimTime(100)).map(|p| p.old) {
            Some(OldVersion::Content(b)) => assert_eq!(&b[..], b"old"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entries_expire() {
        let mut rt = RelationTable::new(2000);
        rt.on_rename("/f", "/t0", SimTime(0));
        assert_eq!(rt.take_match("/f", SimTime(2001)), None);
        rt.on_rename("/g", "/t1", SimTime(0));
        assert_eq!(rt.expire(SimTime(5000)), 1);
        assert!(rt.is_empty());
    }

    #[test]
    fn newer_entry_replaces_older_for_same_src() {
        let mut rt = RelationTable::new(2000);
        rt.on_rename("/f", "/t0", SimTime(0));
        rt.on_rename("/f", "/t9", SimTime(100));
        assert_eq!(
            rt.take_match("/f", SimTime(200)).unwrap().old,
            OldVersion::Path("/t9".into())
        );
    }

    #[test]
    fn invalidate_dst_drops_stale_preservation() {
        let mut rt = RelationTable::new(2000);
        rt.on_rename("/f", "/t0", SimTime(0));
        rt.invalidate_dst("/t0");
        assert_eq!(rt.take_match("/f", SimTime(100)), None);
    }

    #[test]
    fn expiry_boundary_is_inclusive() {
        let mut rt = RelationTable::new(2000);
        rt.on_rename("/f", "/t0", SimTime(0));
        // Exactly at the timeout the entry is still valid.
        assert!(rt.take_match("/f", SimTime(2000)).is_some());
    }
}
