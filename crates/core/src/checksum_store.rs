//! The Checksum Store (paper §III-E): block checksums for integrity.
//!
//! Every file is partitioned into fixed 4 KB blocks; each block's checksum
//! is kept in a local key-value store. Because rsync splits files the same
//! way, the *rolling* checksum doubles as the block checksum, "which
//! further reduces the computational cost" — no cryptographic hash is paid
//! here.
//!
//! The store detects two faults that Dropbox-like systems propagate
//! (Table IV):
//!
//! * **silent corruption** — a block read back no longer matches its
//!   checksum although no write went through the interception layer;
//! * **crash inconsistency** — after a crash, a recently modified file's
//!   blocks disagree with the recorded checksums (data blocks hit the disk
//!   while the corresponding interception-layer state did not).

use deltacfs_delta::{Cost, RollingChecksum};
use deltacfs_kvstore::{BatchOp, KeyValue, KvError};

/// Key layout: `b"cs\0" + path + b"\0" + block index (BE)`.
fn block_key(path: &str, idx: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(3 + path.len() + 9);
    k.extend_from_slice(b"cs\0");
    k.extend_from_slice(path.as_bytes());
    k.push(0);
    k.extend_from_slice(&idx.to_be_bytes());
    k
}

fn file_prefix(path: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(3 + path.len() + 1);
    k.extend_from_slice(b"cs\0");
    k.extend_from_slice(path.as_bytes());
    k.push(0);
    k
}

/// Per-block checksum store over any [`KeyValue`] backend.
#[derive(Debug)]
pub struct ChecksumStore<K> {
    kv: K,
    block_size: usize,
}

impl<K: KeyValue> ChecksumStore<K> {
    /// Creates a store with the given backend and block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(kv: K, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        ChecksumStore { kv, block_size }
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Gives access to the underlying store (e.g. to flush it).
    pub fn backend_mut(&mut self) -> &mut K {
        &mut self.kv
    }

    fn checksum(&self, block: &[u8], cost: &mut Cost) -> u32 {
        cost.bytes_rolled += block.len() as u64;
        cost.ops += 1;
        RollingChecksum::new(block).digest()
    }

    /// Records the checksum of block `idx` of `path`.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn put_block(
        &mut self,
        path: &str,
        idx: u64,
        block: &[u8],
        cost: &mut Cost,
    ) -> Result<(), KvError> {
        let sum = self.checksum(block, cost);
        self.kv.put(&block_key(path, idx), &sum.to_le_bytes())
    }

    /// Verifies block `idx` of `path` against the stored checksum.
    ///
    /// Returns `true` when the block matches or no checksum is recorded
    /// yet (an unknown block cannot be declared corrupt).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn verify_block(
        &mut self,
        path: &str,
        idx: u64,
        block: &[u8],
        cost: &mut Cost,
    ) -> Result<bool, KvError> {
        match self.kv.get(&block_key(path, idx))? {
            Some(stored) => {
                let sum = self.checksum(block, cost);
                Ok(stored == sum.to_le_bytes())
            }
            None => Ok(true),
        }
    }

    /// Re-checksums every block of `content` and records it for `path`,
    /// dropping stale trailing blocks.
    ///
    /// All mutations — stale-tail deletes plus one put per block — are
    /// committed as a single [`KeyValue::write_batch`] group commit: one
    /// WAL append and one flush point instead of N, and a crash leaves
    /// either the old checksum set or the new one, never a mix.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn reindex_file(
        &mut self,
        path: &str,
        content: &[u8],
        cost: &mut Cost,
    ) -> Result<(), KvError> {
        let nblocks = content.len().div_ceil(self.block_size) as u64;
        let mut batch = Vec::new();
        // Remove checksums past the new end.
        for (key, _) in self.kv.scan_prefix(&file_prefix(path))? {
            let idx_bytes: [u8; 8] = key[key.len() - 8..].try_into().expect("8-byte suffix");
            if u64::from_be_bytes(idx_bytes) >= nblocks {
                batch.push(BatchOp::Delete { key });
            }
        }
        for (i, block) in content.chunks(self.block_size).enumerate() {
            let sum = self.checksum(block, cost);
            batch.push(BatchOp::Put {
                key: block_key(path, i as u64),
                value: sum.to_le_bytes().to_vec(),
            });
        }
        self.kv.write_batch(&batch)
    }

    /// Updates checksums for the blocks touched by a write of `data_len`
    /// bytes at `offset`. `read_block(idx)` must return the *current*
    /// (post-write) content of block `idx`, or `None` past EOF.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn update_range(
        &mut self,
        path: &str,
        offset: u64,
        data_len: u64,
        mut read_block: impl FnMut(u64) -> Option<Vec<u8>>,
        cost: &mut Cost,
    ) -> Result<(), KvError> {
        if data_len == 0 {
            return Ok(());
        }
        let first = offset / self.block_size as u64;
        let last = (offset + data_len - 1) / self.block_size as u64;
        let mut batch = Vec::with_capacity((last - first + 1) as usize);
        for idx in first..=last {
            if let Some(block) = read_block(idx) {
                let sum = self.checksum(&block, cost);
                batch.push(BatchOp::Put {
                    key: block_key(path, idx),
                    value: sum.to_le_bytes().to_vec(),
                });
            }
        }
        self.kv.write_batch(&batch)
    }

    /// Adjusts checksums after a truncate to `new_size`; `last_block` is
    /// the content of the (possibly shortened) final block, if any.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn truncate(
        &mut self,
        path: &str,
        new_size: u64,
        last_block: Option<&[u8]>,
        cost: &mut Cost,
    ) -> Result<(), KvError> {
        let nblocks = new_size.div_ceil(self.block_size as u64);
        let mut batch = Vec::new();
        for (key, _) in self.kv.scan_prefix(&file_prefix(path))? {
            let idx_bytes: [u8; 8] = key[key.len() - 8..].try_into().expect("8-byte suffix");
            if u64::from_be_bytes(idx_bytes) >= nblocks {
                batch.push(BatchOp::Delete { key });
            }
        }
        if let (Some(block), true) = (last_block, new_size > 0) {
            let sum = self.checksum(block, cost);
            batch.push(BatchOp::Put {
                key: block_key(path, nblocks - 1),
                value: sum.to_le_bytes().to_vec(),
            });
        }
        self.kv.write_batch(&batch)
    }

    /// Moves all checksums of `from` to `to` (rename).
    ///
    /// Destination-residue deletes, the new puts and the source deletes
    /// all go into one group commit, so a crash can never leave the file
    /// half-renamed in the store.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), KvError> {
        let entries = self.kv.scan_prefix(&file_prefix(from))?;
        let mut batch = Vec::with_capacity(2 * entries.len());
        // Remove any stale checksums for the destination first.
        for (key, _) in self.kv.scan_prefix(&file_prefix(to))? {
            batch.push(BatchOp::Delete { key });
        }
        for (key, value) in entries {
            let idx_bytes: [u8; 8] = key[key.len() - 8..].try_into().expect("8-byte suffix");
            let idx = u64::from_be_bytes(idx_bytes);
            batch.push(BatchOp::Put {
                key: block_key(to, idx),
                value,
            });
            batch.push(BatchOp::Delete { key });
        }
        self.kv.write_batch(&batch)
    }

    /// Removes all checksums for `path`.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn remove(&mut self, path: &str) -> Result<(), KvError> {
        let batch: Vec<BatchOp> = self
            .kv
            .scan_prefix(&file_prefix(path))?
            .into_iter()
            .map(|(key, _)| BatchOp::Delete { key })
            .collect();
        self.kv.write_batch(&batch)
    }

    /// Verifies every block of `content` against the stored checksums and
    /// returns the indices that mismatch. Blocks with no stored checksum
    /// are skipped; stored checksums *past* the content's end are reported
    /// as mismatches (the file shrank behind our back).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn verify_file(
        &mut self,
        path: &str,
        content: &[u8],
        cost: &mut Cost,
    ) -> Result<Vec<u64>, KvError> {
        let mut bad = Vec::new();
        let nblocks = content.len().div_ceil(self.block_size) as u64;
        for (key, stored) in self.kv.scan_prefix(&file_prefix(path))? {
            let idx_bytes: [u8; 8] = key[key.len() - 8..].try_into().expect("8-byte suffix");
            let idx = u64::from_be_bytes(idx_bytes);
            if idx >= nblocks {
                bad.push(idx);
                continue;
            }
            let start = idx as usize * self.block_size;
            let end = (start + self.block_size).min(content.len());
            let sum = self.checksum(&content[start..end], cost);
            if stored != sum.to_le_bytes() {
                bad.push(idx);
            }
        }
        bad.sort_unstable();
        Ok(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltacfs_kvstore::MemStore;

    fn store() -> ChecksumStore<MemStore> {
        ChecksumStore::new(MemStore::new(), 4)
    }

    #[test]
    fn reindex_and_verify_clean_file() {
        let mut cs = store();
        let mut cost = Cost::new();
        let content = b"0123456789"; // 3 blocks: 4+4+2
        cs.reindex_file("/f", content, &mut cost).unwrap();
        assert_eq!(cs.verify_file("/f", content, &mut cost).unwrap(), vec![]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut cs = store();
        let mut cost = Cost::new();
        let content = b"0123456789".to_vec();
        cs.reindex_file("/f", &content, &mut cost).unwrap();
        let mut corrupted = content.clone();
        corrupted[5] ^= 0x01; // block 1
        assert_eq!(
            cs.verify_file("/f", &corrupted, &mut cost).unwrap(),
            vec![1]
        );
    }

    #[test]
    fn update_range_touches_only_affected_blocks() {
        let mut cs = store();
        let mut cost = Cost::new();
        let mut content = b"aaaabbbbcccc".to_vec();
        cs.reindex_file("/f", &content, &mut cost).unwrap();
        // Overwrite bytes 5..7 (inside block 1).
        content[5..7].copy_from_slice(b"XY");
        cs.update_range(
            "/f",
            5,
            2,
            |idx| {
                let start = idx as usize * 4;
                content
                    .get(start..(start + 4).min(content.len()))
                    .map(<[u8]>::to_vec)
            },
            &mut cost,
        )
        .unwrap();
        assert_eq!(cs.verify_file("/f", &content, &mut cost).unwrap(), vec![]);
    }

    #[test]
    fn truncate_drops_tail_checksums() {
        let mut cs = store();
        let mut cost = Cost::new();
        let content = b"aaaabbbbcccc".to_vec();
        cs.reindex_file("/f", &content, &mut cost).unwrap();
        let truncated = &content[..6];
        cs.truncate("/f", 6, Some(&truncated[4..6]), &mut cost)
            .unwrap();
        assert_eq!(cs.verify_file("/f", truncated, &mut cost).unwrap(), vec![]);
    }

    #[test]
    fn shrink_behind_our_back_is_flagged() {
        let mut cs = store();
        let mut cost = Cost::new();
        cs.reindex_file("/f", b"aaaabbbb", &mut cost).unwrap();
        // File shrank to one block without the store being told.
        let bad = cs.verify_file("/f", b"aaaa", &mut cost).unwrap();
        assert_eq!(bad, vec![1]);
    }

    #[test]
    fn rename_moves_checksums() {
        let mut cs = store();
        let mut cost = Cost::new();
        cs.reindex_file("/a", b"12345678", &mut cost).unwrap();
        cs.rename("/a", "/b").unwrap();
        assert_eq!(
            cs.verify_file("/b", b"12345678", &mut cost).unwrap(),
            vec![]
        );
        // No residue under the old name.
        assert_eq!(cs.verify_file("/a", b"zzzz", &mut cost).unwrap(), vec![]);
    }

    #[test]
    fn remove_clears_file() {
        let mut cs = store();
        let mut cost = Cost::new();
        cs.reindex_file("/a", b"12345678", &mut cost).unwrap();
        cs.remove("/a").unwrap();
        assert_eq!(
            cs.verify_file("/a", b"different", &mut cost).unwrap(),
            vec![]
        );
    }

    #[test]
    fn unknown_blocks_verify_true() {
        let mut cs = store();
        let mut cost = Cost::new();
        assert!(cs.verify_block("/f", 0, b"anything", &mut cost).unwrap());
    }

    #[test]
    fn verify_block_detects_mismatch() {
        let mut cs = store();
        let mut cost = Cost::new();
        cs.put_block("/f", 0, b"good", &mut cost).unwrap();
        assert!(cs.verify_block("/f", 0, b"good", &mut cost).unwrap());
        assert!(!cs.verify_block("/f", 0, b"evil", &mut cost).unwrap());
    }

    #[test]
    fn repeated_update_range_round_trips_hit_the_backend_read_cache() {
        // Over a durable backend, the hot path is: write some blocks,
        // flush, then re-verify the same blocks again and again (e.g. a
        // file that keeps receiving writes to the same region). The
        // KvStore read cache should absorb the repeated segment lookups.
        let dir = std::env::temp_dir().join(format!(
            "deltacfs-cs-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = deltacfs_obs::Registry::new();
        let mut kv = deltacfs_kvstore::KvStore::open(&dir).unwrap();
        kv.attach_obs(&reg);
        let mut cs = ChecksumStore::new(kv, 4);
        let mut cost = Cost::new();

        let mut content = b"aaaabbbbcccc".to_vec();
        cs.reindex_file("/f", &content, &mut cost).unwrap();
        let count = |reg: &deltacfs_obs::Registry, name: &str| match reg.snapshot().get(name) {
            Some(deltacfs_obs::MetricValue::Counter(v)) => *v,
            other => panic!("{name}: {other:?}"),
        };

        for round in 0..3u8 {
            // Same region rewritten each round; update_range invalidates
            // exactly the touched block's cache entry.
            content[5..7].copy_from_slice(&[b'0' + round, b'Z']);
            let snapshot = content.clone();
            cs.update_range(
                "/f",
                5,
                2,
                |idx| {
                    let start = idx as usize * 4;
                    snapshot
                        .get(start..(start + 4).min(snapshot.len()))
                        .map(<[u8]>::to_vec)
                },
                &mut cost,
            )
            .unwrap();
            // Push the fresh checksums out of the memtable so the
            // verifying reads below must go through cache + segments.
            cs.backend_mut().flush().unwrap();
            assert!(cs.verify_block("/f", 1, &content[4..8], &mut cost).unwrap());
            assert!(cs.verify_block("/f", 1, &content[4..8], &mut cost).unwrap());
            assert!(cs.verify_block("/f", 1, &content[4..8], &mut cost).unwrap());
        }
        // Each round: one miss to warm the (freshly invalidated) entry,
        // then two hits from the cache.
        assert_eq!(count(&reg, "kv_cache_misses"), 3);
        assert_eq!(count(&reg, "kv_cache_hits"), 6);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paths_do_not_collide() {
        // "/ab" block 0 must not collide with "/a" + strange suffix.
        let mut cs = store();
        let mut cost = Cost::new();
        cs.reindex_file("/ab", b"xxxx", &mut cost).unwrap();
        assert_eq!(cs.verify_file("/a", b"yyyy", &mut cost).unwrap(), vec![]);
    }
}
