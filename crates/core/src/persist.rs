//! Cloud-server persistence: snapshot the server's state to disk and load
//! it back after a restart.
//!
//! The paper leaves server-side system design as future work but sketches
//! the goal: because DeltaCFS servers "simply apply incremental data on
//! files", wimpy storage servers suffice. This module supplies the
//! durability half of that sketch — every file's current content and
//! version (plus the retained history) serializes through the same wire
//! format the protocol uses, into the embedded KV store.
//!
//! Layout inside the store:
//!
//! ```text
//! f\0<path>            = wire-encoded Full message (current content+version)
//! h\0<path>\0<n>       = wire-encoded Full message (history entry n)
//! d\0<path>            = directory marker
//! g\0<client:u32 BE><seq:u64 BE> = recorded whole-group outcomes
//! ```
//!
//! The `g\0` records matter for correctness, not just bookkeeping: the
//! per-version idempotency index is rebuildable from the file histories,
//! but a version-less group (pure rename/mkdir) leaves no version behind
//! — only its persisted `<CliID, GroupSeq>` record lets the restarted
//! server recognize its retransmission. Each group is one record, so a
//! snapshot can never hold a partially recorded group.

use deltacfs_kvstore::{KeyValue, KvError};

use crate::protocol::{ApplyOutcome, ClientId, GroupId, Payload, UpdateMsg, UpdatePayload};
use crate::server::CloudServer;
use crate::wire;

/// Errors from persisting or loading a server snapshot.
#[derive(Debug, Clone)]
pub enum PersistError {
    /// The backing store failed.
    Store(KvError),
    /// A stored record did not decode.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "snapshot store error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Store(e) => Some(e),
            PersistError::Corrupt(_) => None,
        }
    }
}

impl From<KvError> for PersistError {
    fn from(e: KvError) -> Self {
        PersistError::Store(e)
    }
}

fn file_key(path: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + path.len());
    k.extend_from_slice(b"f\0");
    k.extend_from_slice(path.as_bytes());
    k
}

fn history_key(path: &str, n: usize) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + path.len() + 9);
    k.extend_from_slice(b"h\0");
    k.extend_from_slice(path.as_bytes());
    k.push(0);
    k.extend_from_slice(&(n as u64).to_be_bytes());
    k
}

fn dir_key(path: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + path.len());
    k.extend_from_slice(b"d\0");
    k.extend_from_slice(path.as_bytes());
    k
}

fn group_key(group: GroupId) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + 4 + 8);
    k.extend_from_slice(b"g\0");
    k.extend_from_slice(&group.client.0.to_be_bytes());
    k.extend_from_slice(&group.seq.to_be_bytes());
    k
}

fn encode_outcomes(outcomes: &[ApplyOutcome]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + outcomes.len() * 2);
    buf.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
    for o in outcomes {
        match o {
            ApplyOutcome::Applied => buf.push(0),
            ApplyOutcome::Conflict { stored_as } => {
                buf.push(1);
                buf.extend_from_slice(&(stored_as.len() as u32).to_le_bytes());
                buf.extend_from_slice(stored_as.as_bytes());
            }
            ApplyOutcome::Rejected { reason } => {
                buf.push(2);
                buf.extend_from_slice(&(reason.len() as u32).to_le_bytes());
                buf.extend_from_slice(reason.as_bytes());
            }
        }
    }
    buf
}

fn take_record<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], PersistError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| PersistError::Corrupt("group outcomes: truncated".into()))?;
    let out = &buf[*pos..end];
    *pos = end;
    Ok(out)
}

fn decode_outcomes(buf: &[u8]) -> Result<Vec<ApplyOutcome>, PersistError> {
    let corrupt = |m: &str| PersistError::Corrupt(format!("group outcomes: {m}"));
    let mut pos = 0usize;
    let count = u32::from_le_bytes(take_record(buf, &mut pos, 4)?.try_into().expect("4")) as usize;
    let mut out = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let tag = take_record(buf, &mut pos, 1)?[0];
        out.push(match tag {
            0 => ApplyOutcome::Applied,
            1 | 2 => {
                let len =
                    u32::from_le_bytes(take_record(buf, &mut pos, 4)?.try_into().expect("4"))
                        as usize;
                let s = String::from_utf8(take_record(buf, &mut pos, len)?.to_vec())
                    .map_err(|_| corrupt("utf-8"))?;
                if tag == 1 {
                    ApplyOutcome::Conflict { stored_as: s }
                } else {
                    ApplyOutcome::Rejected { reason: s }
                }
            }
            _ => return Err(corrupt("tag")),
        });
    }
    if pos != buf.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(out)
}

/// Writes a full snapshot of `server` into `store` (replacing any previous
/// snapshot).
///
/// # Errors
///
/// Propagates backing-store failures.
pub fn save<K: KeyValue>(server: &CloudServer, store: &mut K) -> Result<(), PersistError> {
    // Clear any previous snapshot.
    for prefix in [&b"f\0"[..], &b"h\0"[..], &b"d\0"[..], &b"g\0"[..]] {
        for (key, _) in store.scan_prefix(prefix)? {
            store.delete(&key)?;
        }
    }
    for path in server.paths() {
        let history = server.version_history(&path);
        // All but the last entry (the current version) are history. Each
        // record's base chains to its predecessor so that replaying the
        // records through the normal apply path validates cleanly and
        // rebuilds the retained history.
        let mut prev = None;
        for (n, v) in history
            .iter()
            .take(history.len().saturating_sub(1))
            .enumerate()
        {
            let old = server.file_at(&path, *v).expect("retained version");
            let msg = UpdateMsg {
                path: path.clone(),
                base: prev,
                version: Some(*v),
                payload: UpdatePayload::Full(Payload::copy_from_slice(old)),
                txn: None,
                group: None,
            };
            store.put(&history_key(&path, n), &wire::encode(&msg))?;
            prev = Some(*v);
        }
        let content = server.file(&path).expect("listed path exists");
        let msg = UpdateMsg {
            path: path.clone(),
            base: prev,
            version: server.version(&path),
            payload: UpdatePayload::Full(Payload::copy_from_slice(content)),
            txn: None,
            group: None,
        };
        store.put(&file_key(&path), &wire::encode(&msg))?;
    }
    for dir in server.dirs() {
        store.put(&dir_key(&dir), b"")?;
    }
    // One record per applied group: the whole outcome vector together, so
    // a reloaded server replays namespace-only groups all-or-nothing.
    for (group, outcomes) in server.group_records() {
        store.put(&group_key(group), &encode_outcomes(outcomes))?;
    }
    Ok(())
}

/// Reconstructs a server from the snapshot in `store`.
///
/// # Errors
///
/// [`PersistError::Corrupt`] if a record fails to decode.
pub fn load<K: KeyValue>(store: &mut K) -> Result<CloudServer, PersistError> {
    let mut server = CloudServer::new();
    // History first (oldest versions applied before the current one).
    let mut history: Vec<(Vec<u8>, Vec<u8>)> = store.scan_prefix(b"h\0")?;
    // Keys sort by path then index, which is exactly application order.
    history.sort_by(|a, b| a.0.cmp(&b.0));
    for (key, value) in history {
        let msg = wire::decode(&value)
            .map_err(|e| PersistError::Corrupt(format!("history {key:?}: {e}")))?;
        server.apply_msg(&msg);
    }
    for (key, value) in store.scan_prefix(b"f\0")? {
        let msg = wire::decode(&value)
            .map_err(|e| PersistError::Corrupt(format!("file {key:?}: {e}")))?;
        server.apply_msg(&msg);
    }
    for (key, _) in store.scan_prefix(b"d\0")? {
        let path = String::from_utf8(key[2..].to_vec())
            .map_err(|_| PersistError::Corrupt("directory path".into()))?;
        server.apply_msg(&UpdateMsg {
            path,
            base: None,
            version: None,
            payload: UpdatePayload::Mkdir,
            txn: None,
            group: None,
        });
    }
    // The per-version idempotency memory died with the old process; every
    // applied version is recoverable from the reloaded file state, so a
    // client retransmitting a group the crashed server had already
    // applied is still recognized as a duplicate.
    server.rebuild_idempotency_index();
    // The whole-group index is *not* rebuildable (a rename leaves no
    // version behind); restore it from its own records.
    for (key, value) in store.scan_prefix(b"g\0")? {
        if key.len() != 2 + 4 + 8 {
            return Err(PersistError::Corrupt(format!("group key {key:?}")));
        }
        let client = u32::from_be_bytes(key[2..6].try_into().expect("4"));
        let seq = u64::from_be_bytes(key[6..14].try_into().expect("8"));
        let group = GroupId {
            client: ClientId(client),
            seq,
        };
        server.restore_group_record(group, decode_outcomes(&value)?);
    }
    Ok(server)
}

/// Reconstructs a server from the snapshot in `store`, replacing
/// `server`'s state in place. This is the per-shard reload path for the
/// sharded hub: each shard reloads from its own store without the caller
/// juggling ownership of the shard slot behind its lock.
///
/// # Errors
///
/// [`PersistError::Corrupt`] if a record fails to decode. On error the
/// target server is left untouched.
pub fn load_into<K: KeyValue>(store: &mut K, server: &mut CloudServer) -> Result<(), PersistError> {
    *server = load(store)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ClientId, Payload, Version};
    use deltacfs_kvstore::{KvStore, MemStore};

    fn v(n: u64) -> Version {
        Version {
            client: ClientId(1),
            counter: n,
        }
    }

    fn full(path: &str, base: Option<Version>, ver: u64, data: &'static [u8]) -> UpdateMsg {
        UpdateMsg {
            path: path.into(),
            base,
            version: Some(v(ver)),
            payload: UpdatePayload::Full(Payload::from_static(data)),
            txn: None,
            group: None,
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_content_versions_history() {
        let mut server = CloudServer::new();
        server.apply_msg(&full("/a", None, 1, b"a1"));
        server.apply_msg(&full("/a", Some(v(1)), 2, b"a2"));
        server.apply_msg(&full("/b", None, 3, b"b1"));
        server.apply_msg(&UpdateMsg {
            path: "/dir".into(),
            base: None,
            version: None,
            payload: UpdatePayload::Mkdir,
            txn: None,
            group: None,
        });

        let mut store = MemStore::new();
        save(&server, &mut store).unwrap();
        let mut restored = load(&mut store).unwrap();

        assert_eq!(restored.file("/a"), Some(&b"a2"[..]));
        assert_eq!(restored.version("/a"), Some(v(2)));
        assert_eq!(restored.file("/b"), Some(&b"b1"[..]));
        assert!(restored.has_dir("/dir"));
        // History survived: the old version is still retrievable.
        assert_eq!(restored.file_at("/a", v(1)), Some(&b"a1"[..]));
        // And incremental updates continue from the restored version.
        let outcome = restored.apply_msg(&full("/a", Some(v(2)), 4, b"a3"));
        assert_eq!(outcome, crate::protocol::ApplyOutcome::Applied);
    }

    #[test]
    fn snapshot_survives_process_restart_via_kvstore() {
        let dir = std::env::temp_dir().join(format!("deltacfs-persist-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut server = CloudServer::new();
            server.apply_msg(&full("/f", None, 1, b"durable"));
            let mut store = KvStore::open(&dir).unwrap();
            save(&server, &mut store).unwrap();
        }
        let mut store = KvStore::open(&dir).unwrap();
        let restored = load(&mut store).unwrap();
        assert_eq!(restored.file("/f"), Some(&b"durable"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resave_replaces_previous_snapshot() {
        let mut store = MemStore::new();
        let mut server = CloudServer::new();
        server.apply_msg(&full("/old", None, 1, b"x"));
        save(&server, &mut store).unwrap();

        let mut server2 = CloudServer::new();
        server2.apply_msg(&full("/new", None, 1, b"y"));
        save(&server2, &mut store).unwrap();

        let restored = load(&mut store).unwrap();
        assert!(restored.file("/old").is_none());
        assert_eq!(restored.file("/new"), Some(&b"y"[..]));
    }

    #[test]
    fn reloaded_server_still_deduplicates_applied_groups() {
        let mut server = CloudServer::new();
        let group = vec![full("/f", None, 1, b"v1")];
        server.apply_txn_idempotent(&group);
        let mut store = MemStore::new();
        save(&server, &mut store).unwrap();

        // Crash: the in-memory server (and its idempotency map) is gone.
        let mut restored = load(&mut store).unwrap();
        // The client never got the ack and retransmits the same group.
        let (outcomes, duplicate) = restored.apply_txn_idempotent(&group);
        assert!(duplicate, "reloaded server must recognize the dup");
        assert_eq!(outcomes, vec![crate::protocol::ApplyOutcome::Applied]);
        assert_eq!(restored.version_history("/f"), vec![v(1)]);
    }

    #[test]
    fn corrupt_record_is_reported() {
        let mut store = MemStore::new();
        store.put(&file_key("/f"), b"not a wire message").unwrap();
        assert!(matches!(load(&mut store), Err(PersistError::Corrupt(_))));
    }
}
