//! # deltacfs-core
//!
//! The DeltaCFS file-sync framework (Zhang et al., ICDCS 2017): an
//! adaptive combination of **NFS-like file RPC** (ship intercepted write
//! operations verbatim) and **delta sync** (triggered only for
//! transactional updates, computed locally with bitwise comparison
//! instead of strong checksums).
//!
//! Architecture (paper Fig. 4):
//!
//! ```text
//!  application ──ops──▶ VFS (deltacfs-vfs) ──events──▶ DeltaCfsClient
//!                                                        │ relation table
//!                                                        │ sync queue (+backindex)
//!                                                        │ undo log / checksum store
//!                                                        ▼
//!                                              versioned UpdateMsg groups
//!                                                        ▼
//!                                                   CloudServer ──forward──▶ other clients
//! ```
//!
//! Entry points: [`DeltaCfsClient`] (the engine), [`CloudServer`] (the
//! cloud), [`DeltaCfsSystem`] (both wired to a simulated link, implementing
//! [`SyncEngine`]), [`SyncHub`] (multi-client sharing).
//!
//! # Example
//!
//! ```
//! use deltacfs_core::{ClientId, CloudServer, DeltaCfsClient, DeltaCfsConfig};
//! use deltacfs_net::SimClock;
//! use deltacfs_vfs::Vfs;
//!
//! let clock = SimClock::new();
//! let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
//! let mut server = CloudServer::new();
//! let mut fs = Vfs::new();
//! fs.enable_event_log();
//!
//! fs.create("/notes.txt")?;
//! fs.write("/notes.txt", 0, b"hello cloud")?;
//! for event in fs.drain_events() {
//!     client.handle_event(&event, &fs);
//! }
//! clock.advance(4_000); // past the sync-queue upload delay
//! for group in client.tick(&fs) {
//!     server.apply_txn(&group);
//! }
//! assert_eq!(server.file("/notes.txt"), Some(&b"hello cloud"[..]));
//! # Ok::<(), deltacfs_vfs::VfsError>(())
//! ```

#![warn(missing_docs)]

mod checksum_store;
mod client;
pub mod codec;
mod config;
mod engine;
mod event_buffer;
mod inline;
mod multi;
pub mod persist;
pub mod pipeline;
mod protocol;
mod relation_table;
mod retry;
mod server;
mod shard;
mod sync_queue;
mod threaded;
mod undo_log;
pub mod wire;

pub use checksum_store::ChecksumStore;
pub use client::{DeltaCfsClient, IntegrityIssue, IssueKind, RemoteConflict};
pub use codec::{CodecPolicy, WireCodec};
pub use config::{CausalMode, DeltaCfsConfig, HubConfig};
pub use engine::{DeltaCfsSystem, EngineReport, SyncEngine};
pub use event_buffer::{BufferObserver, EventBuffer};
pub use inline::{InlineInterceptor, InlineMode};
pub use multi::SyncHub;
pub use protocol::{
    ApplyOutcome, ClientId, FileOpItem, GroupId, Payload, UpdateMsg, UpdatePayload, Version,
    ACK_WIRE_BYTES, MSG_HEADER_BYTES, OP_ITEM_HEADER_BYTES,
};
pub use relation_table::{OldVersion, Preserved, RelationTable};
pub use retry::{Courier, Flight, RetryPolicy, BACKOFF_BUCKETS_MS};
pub use server::CloudServer;
pub use shard::{ShardRouter, ShardedServer};
pub use sync_queue::{Node, NodeKind, SyncQueue};
pub use threaded::{spawn_cloud, CloudGone, CloudHandle};
pub use undo_log::{UndoLog, UndoRecord};
