//! Lock-free event ingestion (paper §IV: "We apply lock-free queue
//! technique to implement Sync Queue").
//!
//! In the real prototype, FUSE worker threads deliver operations
//! concurrently while the uploader drains the sync queue; the paper uses
//! a lock-free queue so interception never blocks on the sync engine.
//! [`EventBuffer`] is that seam: any number of file-system threads push
//! [`OpEvent`]s wait-free (crossbeam's `SegQueue`), and the engine thread
//! drains them in arrival order.

use std::sync::Arc;

use crossbeam::queue::SegQueue;
use deltacfs_vfs::{OpEvent, OpObserver};

/// A lock-free multi-producer event queue between the interception layer
/// and the sync engine. Cloning is cheap (shared handle).
#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    queue: Arc<SegQueue<OpEvent>>,
}

impl EventBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one event (wait-free; callable from any thread).
    pub fn push(&self, event: OpEvent) {
        self.queue.push(event);
    }

    /// Number of events currently buffered (racy snapshot).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drains everything currently buffered, in arrival order.
    pub fn drain(&self) -> Vec<OpEvent> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(e) = self.queue.pop() {
            out.push(e);
        }
        out
    }

    /// An [`OpObserver`] that feeds this buffer; install it with
    /// [`deltacfs_vfs::Vfs::set_observer`] to decouple the file-system
    /// thread from the engine thread.
    pub fn observer(&self) -> BufferObserver {
        BufferObserver {
            buffer: self.clone(),
        }
    }
}

/// The [`OpObserver`] side of an [`EventBuffer`].
#[derive(Debug, Clone)]
pub struct BufferObserver {
    buffer: EventBuffer,
}

impl OpObserver for BufferObserver {
    fn on_op(&mut self, event: &OpEvent) {
        self.buffer.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltacfs_vfs::Vfs;

    #[test]
    fn events_flow_through_observer_in_order() {
        let buffer = EventBuffer::new();
        let mut fs = Vfs::new();
        fs.set_observer(Box::new(buffer.observer()));
        fs.create("/a").unwrap();
        fs.write("/a", 0, b"one").unwrap();
        fs.rename("/a", "/b").unwrap();
        let events = buffer.drain();
        let kinds: Vec<_> = events.iter().map(OpEvent::kind).collect();
        assert_eq!(kinds, vec!["create", "write", "rename"]);
        assert!(buffer.is_empty());
    }

    #[test]
    fn multiple_producer_threads_do_not_lose_events() {
        let buffer = EventBuffer::new();
        let mut workers = Vec::new();
        for t in 0..4u32 {
            let buffer = buffer.clone();
            workers.push(std::thread::spawn(move || {
                let mut fs = Vfs::new();
                fs.set_observer(Box::new(buffer.observer()));
                let path = format!("/t{t}");
                fs.create(&path).unwrap();
                for i in 0..100u64 {
                    fs.write(&path, i, &[t as u8]).unwrap();
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let events = buffer.drain();
        assert_eq!(events.len(), 4 * 101);
        // Per-producer order is preserved: each thread's writes appear in
        // increasing offset order.
        for t in 0..4u32 {
            let path = format!("/t{t}");
            let offsets: Vec<u64> = events
                .iter()
                .filter_map(|e| match e {
                    OpEvent::Write {
                        path: p, offset, ..
                    } if p.as_str() == path => Some(*offset),
                    _ => None,
                })
                .collect();
            assert_eq!(offsets.len(), 100);
            assert!(
                offsets.windows(2).all(|w| w[0] < w[1]),
                "thread {t} reordered"
            );
        }
    }

    #[test]
    fn engine_thread_consumes_while_producer_runs() {
        use crate::client::DeltaCfsClient;
        use crate::config::DeltaCfsConfig;
        use crate::protocol::ClientId;
        use deltacfs_net::SimClock;

        let buffer = EventBuffer::new();
        // Producer thread: a Vfs generating events.
        let producer = {
            let buffer = buffer.clone();
            std::thread::spawn(move || {
                let mut fs = Vfs::new();
                fs.set_observer(Box::new(buffer.observer()));
                fs.create("/f").unwrap();
                for i in 0..50u64 {
                    fs.write("/f", i * 10, b"0123456789").unwrap();
                }
                fs // hand the fs to the consumer for content reads
            })
        };
        let fs = producer.join().unwrap();
        // Engine thread consumes the buffered stream.
        let clock = SimClock::new();
        let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
        for e in buffer.drain() {
            client.handle_event(&e, &fs);
        }
        clock.advance(4_000);
        let msgs: Vec<_> = client.tick(&fs).into_iter().flatten().collect();
        assert!(!msgs.is_empty());
    }
}
