//! Client-side reliability: retransmission with capped exponential
//! backoff over the faulty link.
//!
//! The paper's protocol (§III-D) assumes a reliable transport; this
//! module supplies the piece that makes the simulated lossy transport
//! behave like one. Each client runs a [`Courier`] — a stop-and-wait
//! sender that holds the sync queue's update groups in flight order and
//! retransmits the head group until the server acknowledges it.
//! Stop-and-wait keeps the causal order the sync queue established:
//! group *n+1* never reaches the server before group *n* is applied, so
//! the server's base-version validation still sees updates in
//! dependency order no matter how many retries it took.
//!
//! Retries are paced by [`RetryPolicy`]: capped exponential backoff with
//! seeded jitter, so a fault schedule replays identically for a given
//! seed.

use std::collections::VecDeque;

use deltacfs_net::SimTime;
use deltacfs_obs::Histogram;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::protocol::UpdateMsg;

/// Bucket bounds (ms) for the backoff-delay histogram: one bucket per
/// exponential step of the default policy, so the distribution of armed
/// delays maps directly onto retry depth.
pub const BACKOFF_BUCKETS_MS: [u64; 6] = [500, 1_000, 2_000, 4_000, 8_000, 16_000];

/// Backoff parameters for retransmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single backoff delay, in milliseconds.
    pub cap_ms: u64,
    /// Exponential growth factor between consecutive retries.
    pub multiplier: u64,
    /// Attempts (first try included) before the courier gives up on a
    /// group and parks it in [`Courier::given_up`].
    pub max_attempts: u32,
    /// Jitter fraction: the computed delay is scaled by a uniform draw
    /// from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 500,
            cap_ms: 8_000,
            multiplier: 2,
            max_attempts: 16,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `attempt` (1 = first
    /// retry), jittered by `rng`. Never exceeds [`RetryPolicy::cap_ms`]:
    /// the cap bounds the final delay, jitter included, so upward jitter
    /// on an already-capped delay cannot push past it.
    ///
    /// The rng is always consulted exactly once so the decision stream
    /// stays aligned across runs regardless of the computed delay.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self
            .base_ms
            .saturating_mul(self.multiplier.saturating_pow(exp))
            .min(self.cap_ms);
        let scale: f64 = rng.gen_range(1.0 - self.jitter..1.0 + self.jitter);
        (((raw as f64) * scale).round() as u64).min(self.cap_ms)
    }
}

/// One update group waiting for (re)transmission.
#[derive(Debug, Clone)]
pub struct Flight {
    /// The group, exactly as the sync queue emitted it.
    pub group: Vec<UpdateMsg>,
    /// Transmission attempts made so far.
    pub attempts: u32,
    /// Earliest time the next attempt may go on the wire.
    pub not_before: SimTime,
}

/// Stop-and-wait retransmitter for one client's update groups.
///
/// Groups are sent strictly in enqueue order; the head group is
/// retransmitted with backoff until acknowledged. Groups that exhaust
/// [`RetryPolicy::max_attempts`] are parked in [`Courier::given_up`]
/// (tests treat a non-empty parking lot as a failure).
#[derive(Debug)]
pub struct Courier {
    policy: RetryPolicy,
    rng: StdRng,
    queue: VecDeque<Flight>,
    given_up: Vec<Vec<UpdateMsg>>,
    retries: u64,
    backoff_histogram: Option<Histogram>,
}

impl Courier {
    /// Creates a courier whose jitter stream is derived from `seed`.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Courier {
            policy,
            rng: StdRng::seed_from_u64(seed ^ 0xc0_7e_57_ab_1e_c0_ff_ee),
            queue: VecDeque::new(),
            given_up: Vec::new(),
            retries: 0,
            backoff_histogram: None,
        }
    }

    /// Records every armed backoff delay into `histogram` from now on
    /// (see [`BACKOFF_BUCKETS_MS`] for the intended bucket layout).
    pub fn set_backoff_histogram(&mut self, histogram: Histogram) {
        self.backoff_histogram = Some(histogram);
    }

    /// Appends a group to the tail of the flight queue.
    pub fn enqueue(&mut self, group: Vec<UpdateMsg>) {
        self.queue.push_back(Flight {
            group,
            attempts: 0,
            not_before: SimTime::ZERO,
        });
    }

    /// Whether the head group may be (re)transmitted at `now`.
    pub fn ready(&self, now: SimTime) -> bool {
        self.queue.front().is_some_and(|f| f.not_before <= now)
    }

    /// The head group, if any; marks one attempt against it.
    pub fn take_attempt(&mut self, now: SimTime) -> Option<&Flight> {
        let flight = self.queue.front_mut()?;
        if flight.not_before > now {
            return None;
        }
        flight.attempts += 1;
        if flight.attempts > 1 {
            self.retries += 1;
        }
        Some(&*flight)
    }

    /// The server acknowledged the head group: drop it and expose the
    /// next one.
    pub fn on_ack(&mut self) -> Option<Vec<UpdateMsg>> {
        self.queue.pop_front().map(|f| f.group)
    }

    /// The head group's attempt failed (drop, crash, lost ack): arm the
    /// backoff timer, or park the group if attempts are exhausted.
    ///
    /// Returns the armed delay in milliseconds, or `None` when the group
    /// was parked (or nothing was in flight) — callers use it to trace
    /// the retry decision.
    pub fn on_failure(&mut self, now: SimTime) -> Option<u64> {
        let flight = self.queue.front_mut()?;
        if flight.attempts >= self.policy.max_attempts {
            let flight = self.queue.pop_front().expect("front exists");
            self.given_up.push(flight.group);
            return None;
        }
        let delay = self.policy.backoff_ms(flight.attempts, &mut self.rng);
        flight.not_before = now.plus_millis(delay);
        if let Some(h) = &self.backoff_histogram {
            h.observe(delay);
        }
        Some(delay)
    }

    /// Postpones the head group until `until` without consuming an
    /// attempt's backoff draw (used for disconnect windows, where the
    /// reconnection time is known).
    pub fn defer_until(&mut self, until: SimTime) {
        if let Some(flight) = self.queue.front_mut() {
            flight.not_before = flight.not_before.max(until);
        }
    }

    /// Discards all in-flight groups (client crash: the volatile queue
    /// is lost and will be rebuilt from the undo log).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Earliest time the courier wants to act again, if anything is
    /// queued.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.queue.front().map(|f| f.not_before)
    }

    /// Total retransmissions performed (attempts beyond the first, over
    /// all groups).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Groups abandoned after exhausting the retry budget.
    pub fn given_up(&self) -> &[Vec<UpdateMsg>] {
        &self.given_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UpdatePayload;

    fn group(n: u64) -> Vec<UpdateMsg> {
        vec![UpdateMsg {
            path: format!("/f{n}"),
            base: None,
            version: None,
            payload: UpdatePayload::Create,
            txn: None,
            group: None,
        }]
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(policy.backoff_ms(1, &mut rng), 500);
        assert_eq!(policy.backoff_ms(2, &mut rng), 1_000);
        assert_eq!(policy.backoff_ms(3, &mut rng), 2_000);
        assert_eq!(policy.backoff_ms(10, &mut rng), 8_000); // capped
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for attempt in 1..10 {
            assert_eq!(
                policy.backoff_ms(attempt, &mut a),
                policy.backoff_ms(attempt, &mut b)
            );
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let policy = RetryPolicy {
            jitter: 0.25,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for attempt in 1..=6 {
            let ms = policy.backoff_ms(attempt, &mut rng);
            let raw = 500u64 * 2u64.pow(attempt - 1).min(16);
            let raw = raw.min(8_000);
            let lo = ((raw as f64) * 0.75).floor() as u64;
            let hi = ((raw as f64) * 1.25).ceil() as u64;
            assert!(ms >= lo && ms <= hi, "attempt {attempt}: {ms} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn backoff_never_exceeds_cap_across_seeded_draws() {
        // Regression: jitter used to scale *after* capping, so a capped
        // delay could come out as 1.25 × cap_ms (10 s against the
        // documented 8 s ceiling). The cap bounds the final delay.
        let policy = RetryPolicy::default();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for draw in 0..100u32 {
                let attempt = draw % 20 + 1; // deep attempts stay capped
                let ms = policy.backoff_ms(attempt, &mut rng);
                assert!(
                    ms <= policy.cap_ms,
                    "seed {seed} attempt {attempt}: {ms} ms exceeds cap {}",
                    policy.cap_ms
                );
            }
        }
    }

    #[test]
    fn capped_backoff_keeps_downward_jitter() {
        // The cap must not flatten jitter entirely: delays below cap_ms
        // still occur at capped attempts (only the upward excursions are
        // clamped), so retry storms stay decorrelated.
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<u64> = (0..50).map(|_| policy.backoff_ms(12, &mut rng)).collect();
        assert!(draws.iter().any(|&ms| ms < policy.cap_ms));
        assert!(draws.iter().all(|&ms| ms >= (policy.cap_ms * 3) / 4));
    }

    #[test]
    fn histogram_records_every_armed_delay_below_cap() {
        // Satellite check for the PR 2 jitter-after-cap fix: with the
        // histogram attached, every delay the courier ever arms — across
        // many seeds and deep (capped) attempts — must stay ≤ cap_ms,
        // and the histogram must see exactly one observation per armed
        // backoff.
        let policy = RetryPolicy::default();
        let reg = deltacfs_obs::Registry::new();
        let hist = reg.histogram("retry_backoff_ms", "", &BACKOFF_BUCKETS_MS);
        let mut armed = 0u64;
        for seed in 0..8u64 {
            let mut courier = Courier::new(policy, seed);
            courier.set_backoff_histogram(hist.clone());
            courier.enqueue(group(seed));
            let mut now = SimTime::ZERO;
            loop {
                now = courier.next_wakeup().unwrap().max(now);
                assert!(courier.take_attempt(now).is_some());
                match courier.on_failure(now) {
                    Some(delay) => {
                        armed += 1;
                        assert!(
                            delay <= policy.cap_ms,
                            "seed {seed}: armed {delay} ms > cap {}",
                            policy.cap_ms
                        );
                    }
                    None => break, // parked after max_attempts
                }
            }
        }
        assert_eq!(hist.count(), armed);
        assert!(armed > 0, "no backoffs armed — test is vacuous");
        assert!(
            hist.max() <= policy.cap_ms,
            "histogram max {} exceeds cap {}",
            hist.max(),
            policy.cap_ms
        );
        // Deep attempts actually reach the cap region, so the bound is
        // exercised, not just trivially satisfied.
        assert!(hist.max() >= (policy.cap_ms * 3) / 4);
    }

    #[test]
    fn courier_preserves_order_across_failures() {
        let mut courier = Courier::new(RetryPolicy::default(), 1);
        courier.enqueue(group(1));
        courier.enqueue(group(2));

        // First attempt on group 1 fails; group 2 must not jump ahead.
        let sent = courier.take_attempt(SimTime::ZERO).unwrap();
        assert_eq!(sent.group[0].path, "/f1");
        courier.on_failure(SimTime::ZERO);
        assert!(!courier.ready(SimTime::ZERO), "backoff armed");

        // After backoff expires, the head is still group 1.
        let later = SimTime(20_000);
        let sent = courier.take_attempt(later).unwrap();
        assert_eq!(sent.group[0].path, "/f1");
        assert_eq!(sent.attempts, 2);
        courier.on_ack();

        let sent = courier.take_attempt(later).unwrap();
        assert_eq!(sent.group[0].path, "/f2");
        assert_eq!(courier.retries(), 1);
    }

    #[test]
    fn exhausted_group_is_parked_not_retried_forever() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut courier = Courier::new(policy, 9);
        courier.enqueue(group(1));
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            now = courier.next_wakeup().unwrap().max(now);
            assert!(courier.take_attempt(now).is_some());
            courier.on_failure(now);
        }
        assert!(courier.is_idle());
        assert_eq!(courier.given_up().len(), 1);
    }

    #[test]
    fn defer_until_does_not_consume_attempts() {
        let mut courier = Courier::new(RetryPolicy::default(), 5);
        courier.enqueue(group(1));
        courier.defer_until(SimTime(5_000));
        assert!(!courier.ready(SimTime(4_999)));
        let sent = courier.take_attempt(SimTime(5_000)).unwrap();
        assert_eq!(sent.attempts, 1);
        assert_eq!(courier.retries(), 0);
    }
}
