//! Model-based tests: the persistent store behaves like a `BTreeMap`
//! under arbitrary operation sequences, including flushes, compactions,
//! and re-opens.

use std::collections::BTreeMap;

use deltacfs_kvstore::{KeyValue, KvStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Flush,
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kvstore_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let dir = std::env::temp_dir().join(format!(
            "deltacfs-kv-model-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut store = KvStore::open_with_threshold(&dir, 8).unwrap();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    model.insert(key(*k), v.clone());
                    store.put(&key(*k), v).unwrap();
                }
                Op::Delete(k) => {
                    model.remove(&key(*k));
                    store.delete(&key(*k)).unwrap();
                }
                Op::Flush => store.flush().unwrap(),
                Op::Compact => store.compact().unwrap(),
                Op::Reopen => {
                    drop(store);
                    store = KvStore::open_with_threshold(&dir, 8).unwrap();
                }
            }
            // Spot-check a few keys after every op.
            for k in [0u8, 17, 255] {
                prop_assert_eq!(store.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
            }
        }
        // Full scan equivalence at the end.
        let scanned = store.scan_prefix(b"key-").unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
