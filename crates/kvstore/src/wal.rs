//! Write-ahead log: crash safety for the memtable.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! [crc32 u32][payload_len u32][payload]
//! payload = [kind u8][key_len u32][key][value]     kind: 0 = put, 1 = delete
//! payload = [2u8][count u32][entry]*count          kind: 2 = batch
//! entry   = [kind u8][key_len u32][key]            kind: 1 = delete
//!         | [kind u8][key_len u32][key][val_len u32][value]   kind: 0 = put
//! ```
//!
//! The CRC covers the payload. On replay, a record whose CRC or framing is
//! wrong terminates the scan: everything before it is applied, the torn
//! tail is discarded — the standard contract for a log written by a
//! crashed process. A batch record is one payload under one CRC, so a
//! crash mid-batch discards the *entire* batch: replay sees all of its
//! entries or none of them.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::crc::crc32;
use crate::{BatchOp, Result};

/// A WAL record, as replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A key/value insertion.
    Put {
        /// The inserted key.
        key: Vec<u8>,
        /// The inserted value.
        value: Vec<u8>,
    },
    /// A key deletion (tombstone).
    Delete {
        /// The deleted key.
        key: Vec<u8>,
    },
}

/// An append-only writer for the WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
}

impl WalWriter {
    /// Opens (creating or appending to) the WAL at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            file: BufWriter::new(file),
        })
    }

    /// Appends a record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let mut payload = Vec::new();
        match record {
            WalRecord::Put { key, value } => {
                payload.push(0u8);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
                payload.extend_from_slice(value);
            }
            WalRecord::Delete { key } => {
                payload.push(1u8);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
            }
        }
        self.write_record(&payload)
    }

    /// Appends an entire batch as **one** record — one CRC over all the
    /// entries, one flush point — and flushes it to the OS.
    ///
    /// Replay applies the whole batch or (after a crash that tore the
    /// record) none of it.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn append_batch(&mut self, batch: &[BatchOp]) -> Result<()> {
        let mut payload = Vec::new();
        payload.push(2u8);
        payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for op in batch {
            match op {
                BatchOp::Put { key, value } => {
                    payload.push(0u8);
                    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    payload.extend_from_slice(key);
                    payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    payload.extend_from_slice(value);
                }
                BatchOp::Delete { key } => {
                    payload.push(1u8);
                    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    payload.extend_from_slice(key);
                }
            }
        }
        self.write_record(&payload)
    }

    fn write_record(&mut self, payload: &[u8]) -> Result<()> {
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.file.flush()?;
        Ok(())
    }
}

/// Replays all intact records from the WAL at `path`.
///
/// A missing file yields an empty vector. A torn or corrupt tail ends the
/// replay silently (the records before it are returned).
///
/// # Errors
///
/// Propagates file-system errors other than "not found".
pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let crc = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
        let start = pos + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= data.len() => e,
            _ => break, // torn tail
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            break; // torn or corrupt tail
        }
        match parse_payload(payload) {
            Some(mut recs) => out.append(&mut recs),
            None => break,
        }
        pos = end;
    }
    Ok(out)
}

/// Parses one record payload: a single put/delete, or a batch record that
/// flattens to its (atomically CRC-covered) entries.
fn parse_payload(payload: &[u8]) -> Option<Vec<WalRecord>> {
    let kind = *payload.first()?;
    match kind {
        0 | 1 => {
            let key_len = u32::from_le_bytes(payload.get(1..5)?.try_into().ok()?) as usize;
            let key = payload.get(5..5 + key_len)?.to_vec();
            Some(vec![if kind == 0 {
                WalRecord::Put {
                    key,
                    value: payload.get(5 + key_len..)?.to_vec(),
                }
            } else {
                WalRecord::Delete { key }
            }])
        }
        2 => {
            let count = u32::from_le_bytes(payload.get(1..5)?.try_into().ok()?) as usize;
            let mut recs = Vec::with_capacity(count);
            let mut pos = 5usize;
            for _ in 0..count {
                let kind = *payload.get(pos)?;
                let key_len =
                    u32::from_le_bytes(payload.get(pos + 1..pos + 5)?.try_into().ok()?) as usize;
                let key = payload.get(pos + 5..pos + 5 + key_len)?.to_vec();
                pos += 5 + key_len;
                match kind {
                    0 => {
                        let val_len =
                            u32::from_le_bytes(payload.get(pos..pos + 4)?.try_into().ok()?)
                                as usize;
                        let value = payload.get(pos + 4..pos + 4 + val_len)?.to_vec();
                        pos += 4 + val_len;
                        recs.push(WalRecord::Put { key, value });
                    }
                    1 => recs.push(WalRecord::Delete { key }),
                    _ => return None,
                }
            }
            // Trailing garbage means the record was not written by us.
            if pos != payload.len() {
                return None;
            }
            Some(recs)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deltacfs-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal")
    }

    #[test]
    fn roundtrip_puts_and_deletes() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Put {
                key: b"k1".to_vec(),
                value: b"v1".to_vec(),
            })
            .unwrap();
            w.append(&WalRecord::Delete {
                key: b"k1".to_vec(),
            })
            .unwrap();
            w.append(&WalRecord::Put {
                key: b"k2".to_vec(),
                value: vec![],
            })
            .unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0],
            WalRecord::Put {
                key: b"k1".to_vec(),
                value: b"v1".to_vec()
            }
        );
        assert_eq!(
            records[1],
            WalRecord::Delete {
                key: b"k1".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("missing").join("nope");
        assert!(replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
            w.append(&WalRecord::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            })
            .unwrap();
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_replays_flattened_in_order() {
        let path = tmp("batch");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append_batch(&[
                BatchOp::put(b"a".to_vec(), b"1".to_vec()),
                BatchOp::delete(b"b".to_vec()),
                BatchOp::put(b"c".to_vec(), vec![]),
            ])
            .unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec()
                },
                WalRecord::Delete {
                    key: b"b".to_vec()
                },
                WalRecord::Put {
                    key: b"c".to_vec(),
                    value: vec![]
                },
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_batch_is_all_or_nothing() {
        let path = tmp("torn-batch");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Put {
                key: b"before".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
            w.append_batch(&[
                BatchOp::put(b"x".to_vec(), b"1".to_vec()),
                BatchOp::put(b"y".to_vec(), b"2".to_vec()),
                BatchOp::put(b"z".to_vec(), b"3".to_vec()),
            ])
            .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Chop anywhere inside the batch record: none of x/y/z may replay,
        // even though the intact prefix still holds complete entries.
        for cut in 1..40 {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let records = replay(&path).unwrap();
            assert_eq!(
                records,
                vec![WalRecord::Put {
                    key: b"before".to_vec(),
                    value: b"1".to_vec()
                }],
                "cut {cut} bytes leaked partial batch entries"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_batch_roundtrips() {
        let path = tmp("empty-batch");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append_batch(&[]).unwrap();
        }
        assert!(replay(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            for i in 0..3u8 {
                w.append(&WalRecord::Put {
                    key: vec![i],
                    value: vec![i],
                })
                .unwrap();
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record. Record size: 8 header +
        // payload(1 kind + 4 keylen + 1 key + 1 value) = 15 bytes.
        data[15 + 9] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
