//! Write-ahead log: crash safety for the memtable.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! [crc32 u32][payload_len u32][payload]
//! payload = [kind u8][key_len u32][key][value]     kind: 0 = put, 1 = delete
//! ```
//!
//! The CRC covers the payload. On replay, a record whose CRC or framing is
//! wrong terminates the scan: everything before it is applied, the torn
//! tail is discarded — the standard contract for a log written by a
//! crashed process.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::crc::crc32;
use crate::Result;

/// A WAL record, as replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A key/value insertion.
    Put {
        /// The inserted key.
        key: Vec<u8>,
        /// The inserted value.
        value: Vec<u8>,
    },
    /// A key deletion (tombstone).
    Delete {
        /// The deleted key.
        key: Vec<u8>,
    },
}

/// An append-only writer for the WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
}

impl WalWriter {
    /// Opens (creating or appending to) the WAL at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            file: BufWriter::new(file),
        })
    }

    /// Appends a record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let mut payload = Vec::new();
        match record {
            WalRecord::Put { key, value } => {
                payload.push(0u8);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
                payload.extend_from_slice(value);
            }
            WalRecord::Delete { key } => {
                payload.push(1u8);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
            }
        }
        self.file.write_all(&crc32(&payload).to_le_bytes())?;
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&payload)?;
        self.file.flush()?;
        Ok(())
    }
}

/// Replays all intact records from the WAL at `path`.
///
/// A missing file yields an empty vector. A torn or corrupt tail ends the
/// replay silently (the records before it are returned).
///
/// # Errors
///
/// Propagates file-system errors other than "not found".
pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let crc = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
        let start = pos + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= data.len() => e,
            _ => break, // torn tail
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            break; // torn or corrupt tail
        }
        match parse_payload(payload) {
            Some(rec) => out.push(rec),
            None => break,
        }
        pos = end;
    }
    Ok(out)
}

fn parse_payload(payload: &[u8]) -> Option<WalRecord> {
    let kind = *payload.first()?;
    let key_len = u32::from_le_bytes(payload.get(1..5)?.try_into().ok()?) as usize;
    let key = payload.get(5..5 + key_len)?.to_vec();
    match kind {
        0 => Some(WalRecord::Put {
            key,
            value: payload.get(5 + key_len..)?.to_vec(),
        }),
        1 => Some(WalRecord::Delete { key }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deltacfs-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal")
    }

    #[test]
    fn roundtrip_puts_and_deletes() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Put {
                key: b"k1".to_vec(),
                value: b"v1".to_vec(),
            })
            .unwrap();
            w.append(&WalRecord::Delete {
                key: b"k1".to_vec(),
            })
            .unwrap();
            w.append(&WalRecord::Put {
                key: b"k2".to_vec(),
                value: vec![],
            })
            .unwrap();
        }
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0],
            WalRecord::Put {
                key: b"k1".to_vec(),
                value: b"v1".to_vec()
            }
        );
        assert_eq!(
            records[1],
            WalRecord::Delete {
                key: b"k1".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("missing").join("nope");
        assert!(replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
            w.append(&WalRecord::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            })
            .unwrap();
        }
        // Chop bytes off the end, simulating a crash mid-append.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            for i in 0..3u8 {
                w.append(&WalRecord::Put {
                    key: vec![i],
                    value: vec![i],
                })
                .unwrap();
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record. Record size: 8 header +
        // payload(1 kind + 4 keylen + 1 key + 1 value) = 15 bytes.
        data[15 + 9] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
