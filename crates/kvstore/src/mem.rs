use std::collections::BTreeMap;

use crate::{BatchOp, KeyValue, Result};

/// A volatile, in-memory [`KeyValue`] implementation.
///
/// Used by tests and by experiment configurations that deliberately run
/// without checksum durability (the `DeltaCFS` column of Table III, as
/// opposed to `DeltaCFSc`).
///
/// # Example
///
/// ```
/// use deltacfs_kvstore::{KeyValue, MemStore};
///
/// let mut store = MemStore::new();
/// store.put(b"k", b"v")?;
/// assert_eq!(store.get(b"k")?, Some(b"v".to_vec()));
/// # Ok::<(), deltacfs_kvstore::KvError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl KeyValue for MemStore {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.map.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.map.remove(key);
        Ok(())
    }

    // Volatile stores cannot crash mid-batch, so applying in order is
    // already atomic; overriding skips the per-op `Result` plumbing.
    fn write_batch(&mut self, batch: &[BatchOp]) -> Result<()> {
        for op in batch {
            match op {
                BatchOp::Put { key, value } => {
                    self.map.insert(key.clone(), value.clone());
                }
                BatchOp::Delete { key } => {
                    self.map.remove(key);
                }
            }
        }
        Ok(())
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self
            .map
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let mut s = MemStore::new();
        s.put(b"a", b"1").unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        s.put(b"a", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"2".to_vec()));
        s.delete(b"a").unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        s.delete(b"a").unwrap(); // idempotent
        assert!(s.is_empty());
    }

    #[test]
    fn scan_prefix_is_sorted_and_bounded() {
        let mut s = MemStore::new();
        s.put(b"blk:2", b"b").unwrap();
        s.put(b"blk:1", b"a").unwrap();
        s.put(b"other", b"x").unwrap();
        let hits = s.scan_prefix(b"blk:").unwrap();
        assert_eq!(
            hits,
            vec![
                (b"blk:1".to_vec(), b"a".to_vec()),
                (b"blk:2".to_vec(), b"b".to_vec())
            ]
        );
        assert_eq!(s.scan_prefix(b"zz").unwrap(), vec![]);
    }
}
