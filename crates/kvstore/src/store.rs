use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::{Path, PathBuf};

use deltacfs_obs::{Counter, Registry};

use crate::segment::Segment;
use crate::wal::{replay, WalRecord, WalWriter};
use crate::{BatchOp, KeyValue, KvError, Result};

/// Default memtable flush threshold, in entries.
const DEFAULT_FLUSH_THRESHOLD: usize = 16 * 1024;

/// Default capacity of the segment read cache, in entries.
const DEFAULT_READ_CACHE_ENTRIES: usize = 1024;

/// A small LRU over *segment* lookup results (the memtable is already a
/// single map probe and is always consulted first). Caches negative
/// results too: a `None` from the segment scan is just as expensive to
/// recompute. Writers invalidate the touched keys, so flushes and
/// compactions — which only move entries between layers without changing
/// the merged view — need no invalidation at all.
#[derive(Debug, Default)]
struct ReadCache {
    map: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Least-recently-used first.
    order: VecDeque<Vec<u8>>,
    cap: usize,
}

impl ReadCache {
    fn new(cap: usize) -> Self {
        ReadCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Outer `None` = not cached; inner value is the cached segment-scan
    /// result (which may itself be a miss/tombstone).
    fn get(&mut self, key: &[u8]) -> Option<Option<Vec<u8>>> {
        let hit = self.map.get(key)?.clone();
        if self.order.back().map(Vec::as_slice) != Some(key) {
            self.order.retain(|k| k != key);
            self.order.push_back(key.to_vec());
        }
        Some(hit)
    }

    fn insert(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(key.to_vec(), value).is_some() {
            self.order.retain(|k| k != key);
        }
        self.order.push_back(key.to_vec());
        while self.map.len() > self.cap {
            let evict = self.order.pop_front().expect("order tracks map");
            self.map.remove(&evict);
        }
    }

    fn invalidate(&mut self, key: &[u8]) {
        if self.map.remove(key).is_some() {
            self.order.retain(|k| k != key);
        }
    }
}

/// A persistent key-value store: WAL + memtable + sorted segments.
///
/// See the [crate documentation](crate) for the design. All state lives
/// under a single directory:
///
/// ```text
/// <dir>/wal            the write-ahead log
/// <dir>/seg-000001     oldest segment
/// <dir>/seg-000002     ...
/// ```
#[derive(Debug)]
pub struct KvStore {
    dir: PathBuf,
    wal: WalWriter,
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Oldest first; lookups scan newest first.
    segments: Vec<(u64, Segment)>,
    next_segment: u64,
    flush_threshold: usize,
    /// Records the WAL replayed into the memtable at open time —
    /// exported when [`KvStore::attach_obs`] installs counters.
    replayed: u64,
    counters: Option<KvCounters>,
    cache: ReadCache,
}

/// WAL/flush counters registered by [`KvStore::attach_obs`].
#[derive(Debug, Clone)]
struct KvCounters {
    wal_records: Counter,
    wal_batch_commits: Counter,
    flushes: Counter,
    compactions: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
}

impl KvStore {
    /// Opens (creating if needed) the store rooted at `dir`, replaying the
    /// WAL into the memtable.
    ///
    /// # Errors
    ///
    /// [`KvError::Io`] on file-system failure, [`KvError::Corrupt`] if a
    /// segment file is damaged.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_threshold(dir, DEFAULT_FLUSH_THRESHOLD)
    }

    /// Like [`KvStore::open`] but with a custom memtable flush threshold
    /// (entries). Small thresholds are useful in tests.
    ///
    /// # Errors
    ///
    /// Same as [`KvStore::open`].
    pub fn open_with_threshold(dir: impl AsRef<Path>, flush_threshold: usize) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut segments = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix("seg-") {
                let id: u64 = num
                    .parse()
                    .map_err(|_| KvError::Corrupt(format!("unexpected segment name {name}")))?;
                segments.push((id, Segment::load(&entry.path())?));
            }
        }
        segments.sort_by_key(|(id, _)| *id);
        let next_segment = segments.last().map(|(id, _)| id + 1).unwrap_or(1);
        let mut memtable = BTreeMap::new();
        let mut replayed = 0u64;
        for rec in replay(&dir.join("wal"))? {
            replayed += 1;
            match rec {
                WalRecord::Put { key, value } => {
                    memtable.insert(key, Some(value));
                }
                WalRecord::Delete { key } => {
                    memtable.insert(key, None);
                }
            }
        }
        let wal = WalWriter::open(&dir.join("wal"))?;
        Ok(KvStore {
            dir,
            wal,
            memtable,
            segments,
            next_segment,
            flush_threshold,
            replayed,
            counters: None,
            cache: ReadCache::new(DEFAULT_READ_CACHE_ENTRIES),
        })
    }

    /// Registers this store's WAL, flush, and read-cache counters in
    /// `registry` and starts recording into them: `kv_wal_records`,
    /// `kv_wal_batch_commits`, `kv_memtable_flushes`, `kv_compactions`,
    /// `kv_cache_hits`, `kv_cache_misses`. The records already replayed
    /// from the WAL at open time are added to `kv_wal_replayed_records`
    /// immediately.
    pub fn attach_obs(&mut self, registry: &Registry) {
        registry
            .counter(
                "kv_wal_replayed_records",
                "WAL records replayed into the memtable at open",
            )
            .add(self.replayed);
        self.counters = Some(KvCounters {
            wal_records: registry.counter(
                "kv_wal_records",
                "records appended to the write-ahead log",
            ),
            wal_batch_commits: registry.counter(
                "kv_wal_batch_commits",
                "group commits appended to the WAL as one record",
            ),
            flushes: registry.counter(
                "kv_memtable_flushes",
                "memtable flushes into on-disk segments",
            ),
            compactions: registry.counter("kv_compactions", "full segment compactions"),
            cache_hits: registry.counter(
                "kv_cache_hits",
                "segment lookups served from the read cache",
            ),
            cache_misses: registry.counter(
                "kv_cache_misses",
                "segment lookups that had to scan the segment stack",
            ),
        });
    }

    /// Number of on-disk segments (diagnostics / tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Flushes the memtable to a new segment and truncates the WAL.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let id = self.next_segment;
        self.next_segment += 1;
        let path = self.dir.join(format!("seg-{id:06}"));
        Segment::write(&path, &self.memtable)?;
        self.segments.push((id, Segment::load(&path)?));
        self.memtable.clear();
        if let Some(c) = &self.counters {
            c.flushes.inc();
        }
        // Truncate the WAL: its contents are now durable in the segment.
        std::fs::write(self.dir.join("wal"), b"")?;
        self.wal = WalWriter::open(&self.dir.join("wal"))?;
        Ok(())
    }

    /// Merges all segments (and the memtable) into a single segment,
    /// dropping tombstones.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn compact(&mut self) -> Result<()> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (_, seg) in &self.segments {
            for (k, v) in seg.iter() {
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in &self.memtable {
            merged.insert(k.clone(), v.clone());
        }
        merged.retain(|_, v| v.is_some());
        let old_ids: Vec<u64> = self.segments.iter().map(|(id, _)| *id).collect();
        let id = self.next_segment;
        self.next_segment += 1;
        let path = self.dir.join(format!("seg-{id:06}"));
        Segment::write(&path, &merged)?;
        let seg = Segment::load(&path)?;
        for old in old_ids {
            std::fs::remove_file(self.dir.join(format!("seg-{old:06}"))).ok();
        }
        self.segments = vec![(id, seg)];
        self.memtable.clear();
        std::fs::write(self.dir.join("wal"), b"")?;
        self.wal = WalWriter::open(&self.dir.join("wal"))?;
        if let Some(c) = &self.counters {
            c.compactions.inc();
        }
        Ok(())
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.memtable.len() >= self.flush_threshold {
            self.flush()?;
        }
        Ok(())
    }
}

impl KeyValue for KvStore {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.wal.append(&WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        if let Some(c) = &self.counters {
            c.wal_records.inc();
        }
        self.cache.invalidate(key);
        self.memtable.insert(key.to_vec(), Some(value.to_vec()));
        self.maybe_flush()
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(v) = self.memtable.get(key) {
            return Ok(v.clone());
        }
        if let Some(cached) = self.cache.get(key) {
            if let Some(c) = &self.counters {
                c.cache_hits.inc();
            }
            return Ok(cached);
        }
        if let Some(c) = &self.counters {
            c.cache_misses.inc();
        }
        let found = self
            .segments
            .iter()
            .rev()
            .find_map(|(_, seg)| seg.get(key))
            .and_then(|v| v.cloned());
        self.cache.insert(key, found.clone());
        Ok(found)
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.wal.append(&WalRecord::Delete { key: key.to_vec() })?;
        if let Some(c) = &self.counters {
            c.wal_records.inc();
        }
        self.cache.invalidate(key);
        self.memtable.insert(key.to_vec(), None);
        self.maybe_flush()
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Merge newest-wins across memtable and segments.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (_, seg) in &self.segments {
            for (k, v) in seg.iter() {
                if k.starts_with(prefix) {
                    merged.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in self
            .memtable
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Group commit: the whole batch goes to the WAL as one record (one
    /// CRC, one flush point) before any of it touches the memtable, so a
    /// crash anywhere in between replays all of the batch or none of it.
    fn write_batch(&mut self, batch: &[BatchOp]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.wal.append_batch(batch)?;
        if let Some(c) = &self.counters {
            c.wal_batch_commits.inc();
            c.wal_records.add(batch.len() as u64);
        }
        for op in batch {
            match op {
                BatchOp::Put { key, value } => {
                    self.cache.invalidate(key);
                    self.memtable.insert(key.clone(), Some(value.clone()));
                }
                BatchOp::Delete { key } => {
                    self.cache.invalidate(key);
                    self.memtable.insert(key.clone(), None);
                }
            }
        }
        self.maybe_flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("deltacfs-kv-test-{}-{name}", std::process::id()));
            std::fs::remove_dir_all(&path).ok();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn crud_and_persistence_across_reopen() {
        let dir = TempDir::new("crud");
        {
            let mut s = KvStore::open(&dir.0).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
            s.delete(b"a").unwrap();
        }
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn flush_creates_segments_and_lookups_still_work() {
        let dir = TempDir::new("flush");
        let mut s = KvStore::open_with_threshold(&dir.0, 4).unwrap();
        for i in 0..10u8 {
            s.put(&[i], &[i * 2]).unwrap();
        }
        assert!(s.segment_count() >= 2);
        for i in 0..10u8 {
            assert_eq!(s.get(&[i]).unwrap(), Some(vec![i * 2]));
        }
    }

    #[test]
    fn newest_segment_wins() {
        let dir = TempDir::new("newest");
        let mut s = KvStore::open(&dir.0).unwrap();
        s.put(b"k", b"old").unwrap();
        s.flush().unwrap();
        s.put(b"k", b"new").unwrap();
        s.flush().unwrap();
        assert_eq!(s.get(b"k").unwrap(), Some(b"new".to_vec()));
        // And after reopen.
        drop(s);
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"k").unwrap(), Some(b"new".to_vec()));
    }

    #[test]
    fn tombstones_shadow_older_segments() {
        let dir = TempDir::new("tombstone");
        let mut s = KvStore::open(&dir.0).unwrap();
        s.put(b"k", b"v").unwrap();
        s.flush().unwrap();
        s.delete(b"k").unwrap();
        s.flush().unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
        drop(s);
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
    }

    #[test]
    fn compaction_merges_to_one_segment_and_drops_tombstones() {
        let dir = TempDir::new("compact");
        let mut s = KvStore::open(&dir.0).unwrap();
        s.put(b"a", b"1").unwrap();
        s.flush().unwrap();
        s.put(b"b", b"2").unwrap();
        s.delete(b"a").unwrap();
        s.flush().unwrap();
        s.compact().unwrap();
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
        drop(s);
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(s.segment_count(), 1);
    }

    #[test]
    fn scan_prefix_merges_all_layers() {
        let dir = TempDir::new("scan");
        let mut s = KvStore::open(&dir.0).unwrap();
        s.put(b"blk:1", b"seg").unwrap();
        s.put(b"blk:3", b"dead").unwrap();
        s.flush().unwrap();
        s.put(b"blk:2", b"mem").unwrap();
        s.delete(b"blk:3").unwrap();
        let hits = s.scan_prefix(b"blk:").unwrap();
        assert_eq!(
            hits,
            vec![
                (b"blk:1".to_vec(), b"seg".to_vec()),
                (b"blk:2".to_vec(), b"mem".to_vec()),
            ]
        );
    }

    #[test]
    fn wal_replay_survives_simulated_crash() {
        let dir = TempDir::new("crash");
        {
            let mut s = KvStore::open(&dir.0).unwrap();
            s.put(b"durable", b"yes").unwrap();
            // No flush; process "crashes" here (store dropped without
            // flushing the memtable to a segment).
        }
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"durable").unwrap(), Some(b"yes".to_vec()));
    }

    #[test]
    fn write_batch_is_one_group_commit() {
        let dir = TempDir::new("batch");
        {
            let mut s = KvStore::open(&dir.0).unwrap();
            s.put(b"seed", b"v").unwrap();
            s.write_batch(&[
                BatchOp::put(b"a".to_vec(), b"1".to_vec()),
                BatchOp::put(b"b".to_vec(), b"2".to_vec()),
                BatchOp::delete(b"seed".to_vec()),
            ])
            .unwrap();
        }
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(s.get(b"seed").unwrap(), None);
    }

    #[test]
    fn crashed_batch_replays_all_or_nothing() {
        let dir = TempDir::new("batch-crash");
        {
            let mut s = KvStore::open(&dir.0).unwrap();
            s.put(b"durable", b"yes").unwrap();
            s.write_batch(&[
                BatchOp::put(b"blk:0".to_vec(), b"c0".to_vec()),
                BatchOp::put(b"blk:1".to_vec(), b"c1".to_vec()),
                BatchOp::put(b"blk:2".to_vec(), b"c2".to_vec()),
            ])
            .unwrap();
        }
        // Simulate a crash that tore the batch record: chop bytes off the
        // WAL tail. However deep the cut lands inside the batch, recovery
        // must never surface a strict subset of its keys.
        let wal_path = dir.0.join("wal");
        let full = std::fs::read(&wal_path).unwrap();
        for cut in 1..30 {
            std::fs::write(&wal_path, &full[..full.len() - cut]).unwrap();
            let mut s = KvStore::open(&dir.0).unwrap();
            let present = (0..3u8)
                .filter(|i| {
                    s.get(format!("blk:{i}").as_bytes())
                        .unwrap()
                        .is_some()
                })
                .count();
            assert_eq!(present, 0, "cut {cut}: partial batch visible after crash");
            assert_eq!(s.get(b"durable").unwrap(), Some(b"yes".to_vec()));
        }
        // An untouched WAL replays the whole batch.
        std::fs::write(&wal_path, &full).unwrap();
        let mut s = KvStore::open(&dir.0).unwrap();
        for i in 0..3u8 {
            assert!(s.get(format!("blk:{i}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn write_batch_respects_flush_threshold() {
        let dir = TempDir::new("batch-flush");
        let mut s = KvStore::open_with_threshold(&dir.0, 4).unwrap();
        let batch: Vec<BatchOp> =
            (0..10u8).map(|i| BatchOp::put(vec![i], vec![i * 3])).collect();
        s.write_batch(&batch).unwrap();
        assert!(s.segment_count() >= 1);
        for i in 0..10u8 {
            assert_eq!(s.get(&[i]).unwrap(), Some(vec![i * 3]));
        }
    }

    #[test]
    fn read_cache_serves_repeated_segment_lookups() {
        let dir = TempDir::new("cache");
        let reg = Registry::new();
        let mut s = KvStore::open(&dir.0).unwrap();
        s.attach_obs(&reg);
        s.put(b"k", b"v1").unwrap();
        s.put(b"other", b"x").unwrap();
        s.flush().unwrap(); // move everything into a segment

        let count = |reg: &Registry, name: &str| match reg.snapshot().get(name) {
            Some(deltacfs_obs::MetricValue::Counter(v)) => *v,
            other => panic!("{name}: {other:?}"),
        };

        // First lookup scans the segment stack; the next two are served
        // from the cache.
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        assert_eq!(count(&reg, "kv_cache_misses"), 1);
        assert_eq!(count(&reg, "kv_cache_hits"), 2);

        // Negative results are cached too.
        assert_eq!(s.get(b"absent").unwrap(), None);
        assert_eq!(s.get(b"absent").unwrap(), None);
        assert_eq!(count(&reg, "kv_cache_misses"), 2);
        assert_eq!(count(&reg, "kv_cache_hits"), 3);

        // A write invalidates the cached entry; after the memtable is
        // flushed away the store must re-read the *new* segment value
        // rather than serve the stale cached one.
        s.put(b"k", b"v2").unwrap();
        s.flush().unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        assert_eq!(count(&reg, "kv_cache_misses"), 3);

        // Same story for deletes: the tombstone wins over the cache.
        s.delete(b"k").unwrap();
        s.flush().unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);

        // Compaction does not change the merged view, so cached entries
        // stay valid across it.
        assert_eq!(s.get(b"other").unwrap().as_deref(), Some(&b"x"[..]));
        let hits_before = count(&reg, "kv_cache_hits");
        s.compact().unwrap();
        assert_eq!(s.get(b"other").unwrap().as_deref(), Some(&b"x"[..]));
        assert_eq!(count(&reg, "kv_cache_hits"), hits_before + 1);
    }

    #[test]
    fn read_cache_evicts_least_recently_used() {
        let mut cache = ReadCache::new(2);
        cache.insert(b"a", Some(b"1".to_vec()));
        cache.insert(b"b", Some(b"2".to_vec()));
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(b"a"), Some(Some(b"1".to_vec())));
        cache.insert(b"c", Some(b"3".to_vec()));
        assert_eq!(cache.get(b"b"), None);
        assert_eq!(cache.get(b"a"), Some(Some(b"1".to_vec())));
        assert_eq!(cache.get(b"c"), Some(Some(b"3".to_vec())));
        // Invalidate removes the entry outright.
        cache.invalidate(b"a");
        assert_eq!(cache.get(b"a"), None);
    }

    #[test]
    fn attach_obs_counts_wal_activity_and_replay() {
        let dir = TempDir::new("obs");
        let reg = Registry::new();
        {
            let mut s = KvStore::open(&dir.0).unwrap();
            s.attach_obs(&reg);
            s.put(b"a", b"1").unwrap();
            s.delete(b"a").unwrap();
            s.write_batch(&[
                BatchOp::Put {
                    key: b"b".to_vec(),
                    value: b"2".to_vec(),
                },
                BatchOp::Put {
                    key: b"c".to_vec(),
                    value: b"3".to_vec(),
                },
            ])
            .unwrap();
            s.flush().unwrap();
            s.compact().unwrap();
        }
        let snap = reg.snapshot();
        let count = |name: &str| match snap.get(name) {
            Some(deltacfs_obs::MetricValue::Counter(v)) => *v,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(count("kv_wal_records"), 4); // put + delete + 2 batched
        assert_eq!(count("kv_wal_batch_commits"), 1);
        assert_eq!(count("kv_memtable_flushes"), 1);
        assert_eq!(count("kv_compactions"), 1);
        assert_eq!(count("kv_wal_replayed_records"), 0); // fresh store

        // Reopen without flushing first: WAL replay is counted.
        let reg2 = Registry::new();
        let mut s = KvStore::open(&dir.0).unwrap();
        s.put(b"d", b"4").unwrap();
        drop(s);
        let mut s = KvStore::open(&dir.0).unwrap();
        s.attach_obs(&reg2);
        let snap2 = reg2.snapshot();
        assert_eq!(
            snap2.get("kv_wal_replayed_records"),
            Some(&deltacfs_obs::MetricValue::Counter(1))
        );
    }

    #[test]
    fn empty_store_behaves() {
        let dir = TempDir::new("empty");
        let mut s = KvStore::open(&dir.0).unwrap();
        assert_eq!(s.get(b"nope").unwrap(), None);
        assert!(s.scan_prefix(b"x").unwrap().is_empty());
        s.flush().unwrap(); // flushing empty memtable is a no-op
        assert_eq!(s.segment_count(), 0);
    }
}
