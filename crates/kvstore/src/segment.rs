//! Sorted immutable segment files (miniature SSTables).
//!
//! Layout: `[magic "DSEG"][count u32]` then `count` entries of
//! `[key_len u32][key][tombstone u8][value_len u32][value]`, keys strictly
//! ascending, followed by a trailing CRC-32 of everything before it.
//! Segments are small enough in this system (checksum metadata) to be
//! loaded eagerly.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::crc::crc32;
use crate::{KvError, Result};

const MAGIC: &[u8; 4] = b"DSEG";

/// A loaded segment: a sorted map where `None` is a tombstone.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
}

impl Segment {
    /// Looks up `key`; `Some(None)` means a tombstone shadows older
    /// segments.
    pub fn get(&self, key: &[u8]) -> Option<Option<&Vec<u8>>> {
        self.entries.get(key).map(|v| v.as_ref())
    }

    /// Iterates over all entries (including tombstones) in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Option<Vec<u8>>)> {
        self.entries.iter()
    }

    /// Number of entries, tombstones included.
    #[allow(dead_code)] // used by tests and diagnostics
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment holds no entries.
    #[allow(dead_code)] // used by tests and diagnostics
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes `entries` as a segment file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write(path: &Path, entries: &BTreeMap<Vec<u8>, Option<Vec<u8>>>) -> Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (key, value) in entries {
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key);
            match value {
                Some(v) => {
                    buf.push(0);
                    buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    buf.extend_from_slice(v);
                }
                None => {
                    buf.push(1);
                    buf.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        let crc = crc32(&buf);
        let mut file = File::create(path)?;
        file.write_all(&buf)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_all()?;
        Ok(())
    }

    /// Loads the segment file at `path`.
    ///
    /// # Errors
    ///
    /// [`KvError::Corrupt`] if the magic, framing, ordering, or CRC is
    /// wrong; [`KvError::Io`] on read failure.
    pub fn load(path: &Path) -> Result<Segment> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < 12 || &data[..4] != MAGIC {
            return Err(KvError::Corrupt(format!("{}: bad header", path.display())));
        }
        let body = &data[..data.len() - 4];
        let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(KvError::Corrupt(format!("{}: bad crc", path.display())));
        }
        let count = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
        let mut entries = BTreeMap::new();
        let mut pos = 8usize;
        let mut prev_key: Option<Vec<u8>> = None;
        for _ in 0..count {
            let (key, tombstone, value, next) = parse_entry(body, pos)
                .ok_or_else(|| KvError::Corrupt(format!("{}: truncated entry", path.display())))?;
            if let Some(prev) = &prev_key {
                if *prev >= key {
                    return Err(KvError::Corrupt(format!(
                        "{}: keys out of order",
                        path.display()
                    )));
                }
            }
            prev_key = Some(key.clone());
            entries.insert(key, if tombstone { None } else { Some(value) });
            pos = next;
        }
        Ok(Segment { entries })
    }
}

fn parse_entry(body: &[u8], pos: usize) -> Option<(Vec<u8>, bool, Vec<u8>, usize)> {
    let key_len = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
    let key = body.get(pos + 4..pos + 4 + key_len)?.to_vec();
    let mut p = pos + 4 + key_len;
    let tombstone = *body.get(p)? == 1;
    p += 1;
    let value_len = u32::from_le_bytes(body.get(p..p + 4)?.try_into().ok()?) as usize;
    p += 4;
    let value = body.get(p..p + value_len)?.to_vec();
    Some((key, tombstone, value, p + value_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deltacfs-seg-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("seg")
    }

    #[test]
    fn write_and_load_roundtrip() {
        let path = tmp("roundtrip");
        let mut entries = BTreeMap::new();
        entries.insert(b"a".to_vec(), Some(b"1".to_vec()));
        entries.insert(b"b".to_vec(), None);
        entries.insert(b"c".to_vec(), Some(vec![]));
        Segment::write(&path, &entries).unwrap();
        let seg = Segment::load(&path).unwrap();
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.get(b"a"), Some(Some(&b"1".to_vec())));
        assert_eq!(seg.get(b"b"), Some(None));
        assert_eq!(seg.get(b"c"), Some(Some(&vec![])));
        assert_eq!(seg.get(b"zz"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmp("corrupt");
        let mut entries = BTreeMap::new();
        entries.insert(b"key".to_vec(), Some(b"value".to_vec()));
        Segment::write(&path, &entries).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(Segment::load(&path), Err(KvError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPEnope----").unwrap();
        assert!(matches!(Segment::load(&path), Err(KvError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_segment_roundtrips() {
        let path = tmp("empty");
        Segment::write(&path, &BTreeMap::new()).unwrap();
        let seg = Segment::load(&path).unwrap();
        assert!(seg.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
