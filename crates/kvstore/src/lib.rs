//! # deltacfs-kvstore
//!
//! A small embedded key-value store standing in for LevelDB, which the
//! paper uses for DeltaCFS's Checksum Store (§III-E): per-4 KB-block
//! checksums persisted on the client so that corruption and crash
//! inconsistency can be detected across restarts.
//!
//! The design is a miniature LSM tree:
//!
//! * every mutation is appended to a CRC-protected write-ahead log
//!   ([`wal`]) before being applied to an in-memory memtable,
//! * when the memtable exceeds a threshold it is flushed to a sorted,
//!   immutable segment file,
//! * lookups consult the memtable first, then segments newest-to-oldest,
//! * [`KvStore::compact`] merges all segments and drops tombstones,
//! * on open, segments are loaded and the WAL tail is replayed — torn
//!   final records (a crash mid-append) are detected by CRC and discarded.
//!
//! For workloads that do not need durability (e.g. short-lived tests) the
//! crate also provides [`MemStore`]; both implement [`KeyValue`].
//!
//! # Example
//!
//! ```
//! use deltacfs_kvstore::{KeyValue, KvStore};
//!
//! # fn main() -> Result<(), deltacfs_kvstore::KvError> {
//! let dir = std::env::temp_dir().join(format!("kvdoc-{}", std::process::id()));
//! let mut store = KvStore::open(&dir)?;
//! store.put(b"block:0", b"checksum-a")?;
//! assert_eq!(store.get(b"block:0")?.as_deref(), Some(&b"checksum-a"[..]));
//! store.delete(b"block:0")?;
//! assert_eq!(store.get(b"block:0")?, None);
//! # drop(store);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod crc;
mod error;
mod mem;
mod segment;
mod store;
mod tenant;
pub mod wal;

pub use crc::crc32;
pub use error::KvError;
pub use mem::MemStore;
pub use store::KvStore;
pub use tenant::{ReadCache, TenantView};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, KvError>;

/// One operation inside an atomic [`KeyValue::write_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Store `value` under `key`.
    Put {
        /// The key to insert.
        key: Vec<u8>,
        /// The value to store.
        value: Vec<u8>,
    },
    /// Remove `key` (absent keys are not an error).
    Delete {
        /// The key to remove.
        key: Vec<u8>,
    },
}

impl BatchOp {
    /// Convenience constructor for a put.
    pub fn put(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        BatchOp::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a delete.
    pub fn delete(key: impl Into<Vec<u8>>) -> Self {
        BatchOp::Delete { key: key.into() }
    }
}

/// The key-value operations the DeltaCFS checksum store needs.
///
/// Implemented by the persistent [`KvStore`] and the volatile
/// [`MemStore`].
pub trait KeyValue {
    /// Stores `value` under `key`, replacing any previous value.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Io`] if persisting the mutation fails.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the value stored under `key`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Io`] if reading fails.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Removes `key`; removing an absent key is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Io`] if persisting the mutation fails.
    fn delete(&mut self, key: &[u8]) -> Result<()>;

    /// Returns all `(key, value)` pairs whose key starts with `prefix`,
    /// sorted by key.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Io`] if reading fails.
    fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Applies `batch` as one group commit.
    ///
    /// [`KvStore`] overrides this with a single WAL append (one CRC over
    /// the whole batch record, one flush point) whose replay is
    /// all-or-nothing after a crash. The default implementation applies
    /// the operations one by one and makes no atomicity promise — volatile
    /// backends that cannot crash mid-batch (e.g. [`MemStore`]) are
    /// trivially atomic anyway.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Io`] if persisting the batch fails.
    fn write_batch(&mut self, batch: &[BatchOp]) -> Result<()> {
        for op in batch {
            match op {
                BatchOp::Put { key, value } => self.put(key, value)?,
                BatchOp::Delete { key } => self.delete(key)?,
            }
        }
        Ok(())
    }
}
