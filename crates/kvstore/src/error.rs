use std::error::Error;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Errors produced by the key-value store.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum KvError {
    /// An underlying file-system operation failed.
    ///
    /// The inner error is shared so `KvError` stays `Clone`.
    Io(Arc<io::Error>),
    /// A segment file had an unreadable structure (not a torn WAL tail,
    /// which is tolerated, but genuine on-disk corruption).
    Corrupt(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "io error: {e}"),
            KvError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e.as_ref()),
            KvError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_convert_and_chain() {
        let e: KvError = io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn check<T: Send + Sync + Clone>() {}
        check::<KvError>();
    }
}
