//! Multi-tenant access to a shared store: per-namespace key prefixing
//! ([`TenantView`]) and a bounded per-store LRU read cache
//! ([`ReadCache`]).
//!
//! The sharded hub (DESIGN.md §13) gives every shard its own snapshot
//! store — a shard never touches another shard's persistence or cache.
//! Within a shard, several tenants can share the backing store; a
//! [`TenantView`] fences each tenant into its own key prefix, so one
//! tenant's reads can never observe (or cache) another's records even
//! when both use the same user-level key. The multi-tenant kvstore tests
//! pin both properties: cache hits never leak across tenants, and a
//! writer's invalidation on one store can never leave a *different*
//! store's cache serving stale segments (each cache fronts exactly one
//! store).

use std::collections::HashMap;

use deltacfs_obs::{Counter, Registry};

use crate::{BatchOp, KeyValue, Result};

/// Byte that terminates the namespace inside a prefixed key. Namespaces
/// are path components (no NUL), so the terminator cannot be ambiguous.
const NS_SEP: u8 = 0;

/// A namespaced view over a shared [`KeyValue`] store: every key is
/// transparently prefixed with `t\0<namespace>\0`, so two views with
/// different namespaces address disjoint key ranges of the same backing
/// store.
///
/// # Example
///
/// ```
/// use deltacfs_kvstore::{KeyValue, MemStore, TenantView};
///
/// let mut store = MemStore::new();
/// TenantView::new(&mut store, "alice").put(b"/f", b"a").unwrap();
/// TenantView::new(&mut store, "bob").put(b"/f", b"b").unwrap();
/// assert_eq!(
///     TenantView::new(&mut store, "alice").get(b"/f").unwrap(),
///     Some(b"a".to_vec())
/// );
/// # Ok::<(), deltacfs_kvstore::KvError>(())
/// # ;
/// ```
#[derive(Debug)]
pub struct TenantView<'a, K: KeyValue> {
    inner: &'a mut K,
    prefix: Vec<u8>,
}

impl<'a, K: KeyValue> TenantView<'a, K> {
    /// A view of `inner` fenced to `namespace`.
    ///
    /// # Panics
    ///
    /// Panics if `namespace` contains a NUL byte (the prefix terminator).
    pub fn new(inner: &'a mut K, namespace: &str) -> Self {
        assert!(
            !namespace.as_bytes().contains(&NS_SEP),
            "namespace must not contain NUL"
        );
        let mut prefix = Vec::with_capacity(3 + namespace.len());
        prefix.push(b't');
        prefix.push(NS_SEP);
        prefix.extend_from_slice(namespace.as_bytes());
        prefix.push(NS_SEP);
        TenantView { inner, prefix }
    }

    fn fence(&self, key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(self.prefix.len() + key.len());
        k.extend_from_slice(&self.prefix);
        k.extend_from_slice(key);
        k
    }
}

impl<K: KeyValue> KeyValue for TenantView<'_, K> {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let k = self.fence(key);
        self.inner.put(&k, value)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let k = self.fence(key);
        self.inner.get(&k)
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        let k = self.fence(key);
        self.inner.delete(&k)
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let fenced = self.fence(prefix);
        let strip = self.prefix.len();
        Ok(self
            .inner
            .scan_prefix(&fenced)?
            .into_iter()
            .map(|(k, v)| (k[strip..].to_vec(), v))
            .collect())
    }

    fn write_batch(&mut self, batch: &[BatchOp]) -> Result<()> {
        // Re-key and delegate in one call so the backing store's group
        // commit (single WAL record) still covers the whole batch.
        let fenced: Vec<BatchOp> = batch
            .iter()
            .map(|op| match op {
                BatchOp::Put { key, value } => BatchOp::Put {
                    key: self.fence(key),
                    value: value.clone(),
                },
                BatchOp::Delete { key } => BatchOp::Delete {
                    key: self.fence(key),
                },
            })
            .collect();
        self.inner.write_batch(&fenced)
    }
}

/// A bounded LRU read cache in front of one [`KeyValue`] store
/// (write-through with invalidate-on-write). Caches `get` results —
/// present *and* absent — up to `capacity` keys; `scan_prefix` bypasses
/// the cache.
///
/// The cache fronts exactly one store. In the sharded hub each shard
/// wraps its own store, so an invalidation performed by shard A's writer
/// lands in shard A's cache — there is no path by which shard B could
/// keep serving A's stale segments, because B's cache never held them.
#[derive(Debug)]
pub struct ReadCache<K: KeyValue> {
    inner: K,
    capacity: usize,
    map: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Keys in recency order, least-recent first (O(capacity) updates —
    /// the cache is meant for small, hot working sets).
    order: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    obs_hits: Option<Counter>,
    obs_misses: Option<Counter>,
}

impl<K: KeyValue> ReadCache<K> {
    /// Wraps `inner` with an LRU read cache of `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: K, capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs at least one slot");
        ReadCache {
            inner,
            capacity,
            map: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
            obs_hits: None,
            obs_misses: None,
        }
    }

    /// Mirrors hit/miss counts into `kv_cache_hits` / `kv_cache_misses`
    /// counters of `registry`, labeled `cache="<name>"` (e.g. one series
    /// per shard).
    pub fn attach_obs(&mut self, registry: &Registry, name: &str) {
        let label = Some(("cache", name));
        self.obs_hits = Some(registry.counter_labeled(
            "kv_cache_hits",
            "reads served from the LRU read cache",
            label,
        ));
        self.obs_misses = Some(registry.counter_labeled(
            "kv_cache_misses",
            "reads that went through to the backing store",
            label,
        ));
    }

    /// Reads served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Reads that went through to the backing store.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached keys.
    pub fn cached(&self) -> usize {
        self.map.len()
    }

    /// The wrapped store.
    pub fn inner_mut(&mut self) -> &mut K {
        &mut self.inner
    }

    /// Unwraps the cache, returning the backing store.
    pub fn into_inner(self) -> K {
        self.inner
    }

    fn touch(&mut self, key: &[u8]) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn invalidate(&mut self, key: &[u8]) {
        if self.map.remove(key).is_some() {
            if let Some(pos) = self.order.iter().position(|k| k == key) {
                self.order.remove(pos);
            }
        }
    }

    fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        if self.map.len() >= self.capacity
            && !self.map.contains_key(&key)
            && !self.order.is_empty()
        {
            let evicted = self.order.remove(0);
            self.map.remove(&evicted);
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
        } else {
            self.touch(&key);
        }
    }
}

impl<K: KeyValue> KeyValue for ReadCache<K> {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.inner.put(key, value)?;
        self.invalidate(key);
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(cached) = self.map.get(key).cloned() {
            self.hits += 1;
            if let Some(c) = &self.obs_hits {
                c.inc();
            }
            self.touch(key);
            return Ok(cached);
        }
        self.misses += 1;
        if let Some(c) = &self.obs_misses {
            c.inc();
        }
        let value = self.inner.get(key)?;
        self.insert(key.to_vec(), value.clone());
        Ok(value)
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.inner.delete(key)?;
        self.invalidate(key);
        Ok(())
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_prefix(prefix)
    }

    fn write_batch(&mut self, batch: &[BatchOp]) -> Result<()> {
        self.inner.write_batch(batch)?;
        for op in batch {
            match op {
                BatchOp::Put { key, .. } | BatchOp::Delete { key } => self.invalidate(key),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn tenants_address_disjoint_key_ranges() {
        let mut store = MemStore::new();
        TenantView::new(&mut store, "t1").put(b"/f", b"one").unwrap();
        TenantView::new(&mut store, "t2").put(b"/f", b"two").unwrap();
        assert_eq!(
            TenantView::new(&mut store, "t1").get(b"/f").unwrap(),
            Some(b"one".to_vec())
        );
        assert_eq!(
            TenantView::new(&mut store, "t2").get(b"/f").unwrap(),
            Some(b"two".to_vec())
        );
        // Deleting through one tenant leaves the other untouched.
        TenantView::new(&mut store, "t1").delete(b"/f").unwrap();
        assert_eq!(TenantView::new(&mut store, "t1").get(b"/f").unwrap(), None);
        assert_eq!(
            TenantView::new(&mut store, "t2").get(b"/f").unwrap(),
            Some(b"two".to_vec())
        );
    }

    #[test]
    fn tenant_scan_sees_only_its_namespace_and_strips_the_prefix() {
        let mut store = MemStore::new();
        TenantView::new(&mut store, "t1").put(b"f\0/a", b"1").unwrap();
        TenantView::new(&mut store, "t1").put(b"f\0/b", b"2").unwrap();
        TenantView::new(&mut store, "t2").put(b"f\0/c", b"3").unwrap();
        let rows = TenantView::new(&mut store, "t1").scan_prefix(b"f\0").unwrap();
        assert_eq!(
            rows,
            vec![
                (b"f\0/a".to_vec(), b"1".to_vec()),
                (b"f\0/b".to_vec(), b"2".to_vec()),
            ]
        );
    }

    #[test]
    fn tenant_batches_stay_atomic_groups() {
        let mut store = MemStore::new();
        TenantView::new(&mut store, "t1")
            .write_batch(&[BatchOp::put(&b"/a"[..], &b"1"[..]), BatchOp::delete(&b"/b"[..])])
            .unwrap();
        assert_eq!(
            TenantView::new(&mut store, "t1").get(b"/a").unwrap(),
            Some(b"1".to_vec())
        );
        assert_eq!(TenantView::new(&mut store, "t2").get(b"/a").unwrap(), None);
    }

    #[test]
    fn cache_hits_and_evicts_lru() {
        let mut store = MemStore::new();
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        store.put(b"c", b"3").unwrap();
        let mut cache = ReadCache::new(store, 2);
        assert_eq!(cache.get(b"a").unwrap(), Some(b"1".to_vec())); // miss
        assert_eq!(cache.get(b"a").unwrap(), Some(b"1".to_vec())); // hit
        assert_eq!(cache.get(b"b").unwrap(), Some(b"2".to_vec())); // miss
        // `a` is more recent than nothing — touch it, then overflow.
        assert_eq!(cache.get(b"a").unwrap(), Some(b"1".to_vec())); // hit
        assert_eq!(cache.get(b"c").unwrap(), Some(b"3".to_vec())); // miss, evicts b
        assert_eq!(cache.get(b"b").unwrap(), Some(b"2".to_vec())); // miss again
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 4);
        assert!(cache.cached() <= 2);
    }

    #[test]
    fn writes_invalidate_instead_of_serving_stale() {
        let mut cache = ReadCache::new(MemStore::new(), 8);
        cache.put(b"k", b"v1").unwrap();
        assert_eq!(cache.get(b"k").unwrap(), Some(b"v1".to_vec()));
        cache.put(b"k", b"v2").unwrap();
        assert_eq!(cache.get(b"k").unwrap(), Some(b"v2".to_vec()));
        cache.write_batch(&[BatchOp::delete(&b"k"[..])]).unwrap();
        assert_eq!(cache.get(b"k").unwrap(), None);
    }

    #[test]
    fn negative_results_are_cached_too() {
        let mut cache = ReadCache::new(MemStore::new(), 8);
        assert_eq!(cache.get(b"ghost").unwrap(), None); // miss
        assert_eq!(cache.get(b"ghost").unwrap(), None); // hit
        assert_eq!(cache.hits(), 1);
        // A later write invalidates the negative entry.
        cache.put(b"ghost", b"now real").unwrap();
        assert_eq!(cache.get(b"ghost").unwrap(), Some(b"now real".to_vec()));
    }
}
