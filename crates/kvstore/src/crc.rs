//! CRC-32 (IEEE 802.3 polynomial), used to detect torn WAL records.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 checksum of `data`.
///
/// # Example
///
/// ```
/// assert_eq!(deltacfs_kvstore::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xFFFFFFFF;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFFFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"hello world".to_vec();
        let original = crc32(&data);
        data[3] ^= 0x10;
        assert_ne!(crc32(&data), original);
    }
}
