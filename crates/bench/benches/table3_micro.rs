//! Table III: local IO throughput under Native / FUSE / DeltaCFS /
//! DeltaCFS-with-checksums. The table itself *is* a wall-clock
//! measurement; the criterion group then measures each mode's filebench
//! pass precisely.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use deltacfs_bench::experiments::table3;
use deltacfs_bench::table::render_table3;
use deltacfs_core::{InlineInterceptor, InlineMode};
use deltacfs_vfs::Vfs;
use deltacfs_workloads::filebench::{self, FilebenchConfig, Personality};

fn table3_bench(c: &mut Criterion) {
    let cfg = FilebenchConfig::default();
    let rows = table3(&cfg, 3);
    println!("\n{}", render_table3(&rows));

    let small = FilebenchConfig {
        files: 50,
        file_size: 64 * 1024,
        ops: 300,
        seed: 7,
    };
    let mut group = c.benchmark_group("table3_fileserver");
    group.sample_size(10);
    group.throughput(Throughput::Elements(small.ops as u64));
    group.bench_function("native", |b| {
        b.iter(|| {
            let mut fs = Vfs::new();
            filebench::run(Personality::Fileserver, &small, &mut fs)
        })
    });
    group.bench_function("fuse", |b| {
        b.iter(|| {
            let mut fs = Vfs::new();
            fs.set_observer(Box::new(InlineInterceptor::new(
                InlineMode::FusePassthrough,
            )));
            filebench::run(Personality::Fileserver, &small, &mut fs)
        })
    });
    group.bench_function("deltacfs", |b| {
        b.iter(|| {
            let mut fs = Vfs::new();
            fs.set_observer(Box::new(InlineInterceptor::new(InlineMode::DeltaCfs)));
            filebench::run(Personality::Fileserver, &small, &mut fs)
        })
    });
    group.bench_function("deltacfs_checksum", |b| {
        b.iter(|| {
            let mut fs = Vfs::new();
            fs.set_observer(Box::new(InlineInterceptor::new(
                InlineMode::DeltaCfsChecksum,
            )));
            filebench::run(Personality::Fileserver, &small, &mut fs)
        })
    });
    group.finish();
}

criterion_group!(benches, table3_bench);
criterion_main!(benches);
