//! Figure 2: Dropsync syncing WeChat's data on a phone — traffic usage
//! efficiency and sustained CPU load.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments;
use deltacfs_bench::table::render_fig2;

fn fig2(c: &mut Criterion) {
    let result = experiments::fig2(0.05);
    println!("\n{}", render_fig2(&result));
    assert!(result.tue > 1.5, "TUE should be poor, got {}", result.tue);

    let mut group = c.benchmark_group("fig2_dropsync");
    group.sample_size(10);
    group.bench_function("wechat_on_mobile", |b| b.iter(|| experiments::fig2(0.01)));
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
