//! Figure 1: motivation — client CPU and upload for Dropbox vs Seafile on
//! the Word (12 MB, 23 saves) and SQLite chat (130 MB, 4 mods) files.
//! Prints the figure's series, then measures one sync pass per engine.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::table::render_fig1;
use deltacfs_bench::{experiments, EngineKind};

const PRINT_SCALE: f64 = 0.05;
const BENCH_SCALE: f64 = 0.01;

fn fig1(c: &mut Criterion) {
    let rows = experiments::fig1(PRINT_SCALE);
    println!("\n{}", render_fig1(&rows));

    let mut group = c.benchmark_group("fig1_motivation");
    group.sample_size(10);
    group.bench_function("dropbox_word_session", |b| {
        b.iter(|| experiments::fig1(BENCH_SCALE))
    });
    group.finish();

    // The motivating gap: Dropbox burns far more client CPU than Seafile
    // on the SQLite file, while Seafile uploads far more on both.
    let get = |k: EngineKind, t: &str| rows.iter().find(|r| r.engine == k && r.trace == t).unwrap();
    let db = get(EngineKind::Dropbox, "wechat").client_ticks.unwrap();
    let sf = get(EngineKind::Seafile, "wechat").client_ticks.unwrap();
    assert!(db > sf, "dropbox {db} vs seafile {sf}");
}

criterion_group!(benches, fig1);
criterion_main!(benches);
