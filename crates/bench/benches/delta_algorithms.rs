//! Micro-benchmarks of the delta-encoding primitives: the raw per-byte
//! costs that explain Table II. Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deltacfs_delta::{cdc, compress, dedup, local, md5, rsync, Cost, DeltaParams};

const SIZE: usize = 4 * 1024 * 1024;

fn make_input() -> (Vec<u8>, Vec<u8>) {
    let mut old = vec![0u8; SIZE];
    let mut state = 0x2545F4914F6CDD1Du64;
    for b in old.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
    let mut new = old.clone();
    // A realistic edit: a small in-place change plus a shift.
    new[SIZE / 2..SIZE / 2 + 1024].fill(0xEE);
    new.splice(1000..1000, [0xAB; 64]);
    (old, new)
}

fn bench_primitives(c: &mut Criterion) {
    let (old, new) = make_input();
    let params = DeltaParams::new();

    let mut group = c.benchmark_group("delta_primitives");
    group.throughput(Throughput::Bytes(SIZE as u64));
    group.sample_size(10);

    group.bench_function("md5_whole_buffer", |b| {
        b.iter(|| md5(std::hint::black_box(&old)))
    });

    group.bench_function("rsync_signature", |b| {
        b.iter(|| rsync::signature(&old, &params, &mut Cost::new()))
    });

    let sig = rsync::signature(&old, &params, &mut Cost::new());
    group.bench_function("rsync_diff", |b| {
        b.iter(|| rsync::diff(&sig, &new, &params, &mut Cost::new()))
    });

    group.bench_function("local_bitwise_diff", |b| {
        b.iter(|| local::diff(&old, &new, &params, &mut Cost::new()))
    });

    group.bench_function("cdc_chunking", |b| {
        b.iter(|| cdc::chunks(&new, &cdc::CdcParams::seafile(), &mut Cost::new()))
    });

    group.bench_function("dedup_4mb_blocks", |b| {
        b.iter(|| dedup::block_ids(&new, dedup::DROPBOX_BLOCK_SIZE, &mut Cost::new()))
    });

    group.bench_function("lz_compress", |b| {
        b.iter(|| compress::compressed_size(&new, &mut Cost::new()))
    });
    group.finish();

    // Summary the paper's optimization rests on: the triggered local delta
    // never strong-hashes.
    let mut c_local = Cost::new();
    let d_local = local::diff(&old, &new, &params, &mut c_local);
    let mut c_rsync = Cost::new();
    let sig = rsync::signature(&old, &params, &mut c_rsync);
    let d_rsync = rsync::diff(&sig, &new, &params, &mut c_rsync);
    println!(
        "\nlocal bitwise diff:  strong-hashed {} B, compared {} B, delta {} B",
        c_local.bytes_strong_hashed,
        c_local.bytes_compared,
        d_local.wire_size()
    );
    println!(
        "classic rsync:       strong-hashed {} B, rolled {} B, delta {} B\n",
        c_rsync.bytes_strong_hashed,
        c_rsync.bytes_rolled,
        d_rsync.wire_size()
    );
}

fn bench_block_sizes(c: &mut Criterion) {
    let (old, new) = make_input();
    let mut group = c.benchmark_group("local_diff_block_size");
    group.sample_size(10);
    for bs in [1024usize, 4096, 16 * 1024, 64 * 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            let params = DeltaParams::with_block_size(bs);
            b.iter(|| local::diff(&old, &new, &params, &mut Cost::new()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_block_sizes);
criterion_main!(benches);
