//! Hierarchical coarse→fine reconciliation on 1 GiB-class files (BENCH_10).
//!
//! Three huge-file edit patterns — a handful of large in-place spans,
//! many scattered page writes, and an insertion that shifts everything —
//! are built sparsely with [`deltacfs_workloads::HugeFile`] and diffed
//! two ways: the sequential greedy matcher, and the hierarchical shingle
//! tree ([`deltacfs_delta::hierarchy`]) that accepts identical coarse
//! spans wholesale and hands only divergent leaf ranges to the byte
//! walk. Reported per scenario:
//!
//! * `local` (bitwise confirm, index built inside the diff) and `rsync`
//!   (MD5 confirm against a **precomputed signature** — the cloud-sync
//!   hot path, where the receiver's signature is cached) wall-clock,
//!   with the hierarchical speedup over sequential;
//! * the `HierarchyStats` contract: `bytes_skipped + leaf_walk_bytes`
//!   equals the new-file length, and ≥ 95% of the bytes were never
//!   byte-walked;
//! * a small-file control: under the default 64 MiB gate the
//!   hierarchical params must change nothing (same output, not engaged);
//! * profiler visibility: a streamed upload with the hierarchy engaged
//!   must surface the `delta.hierarchy` stage in the span profiler.
//!
//! Every hierarchical run is checked byte-identical (same `Delta`, same
//! `Cost`) to its sequential twin before being timed. Full mode writes
//! `BENCH_10.json` at the repository root and asserts the ≥ 5× headline
//! on the rsync flavour; smoke mode (`cargo bench -p deltacfs-bench
//! --bench hierarchical_delta -- --test`, or `DELTACFS_BENCH_SMOKE=1`)
//! shrinks sizes, skips the wall-clock gates, and writes
//! `BENCH_10.smoke.json` instead.

use std::time::Instant;

use deltacfs_core::pipeline::{self, PipelineConfig};
use deltacfs_core::{
    ClientId, CloudServer, GroupId, Payload, UpdateMsg, UpdatePayload, Version,
};
use deltacfs_delta::{
    local, rsync, take_hierarchy_stats, Cost, DeltaParams, HierarchyParams, HierarchyStats,
};
use deltacfs_net::{Link, LinkSpec, PlatformProfile, SimTime};
use deltacfs_obs::{Obs, Profiler};
use deltacfs_workloads::HugeFile;

const MIB: u64 = 1024 * 1024;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// Deterministic pseudo-random fill (xorshift-multiply LCG) for edit
/// payloads — distinct from the HugeFile base stream by construction.
fn fill_random(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

fn patch(len: usize, seed: u64) -> Vec<u8> {
    let mut p = vec![0u8; len];
    fill_random(&mut p, seed);
    p
}

/// Best-of-`samples` wall-clock milliseconds for `f` (after one warmup).
fn time_best_ms<R, F: FnMut() -> R>(samples: usize, mut f: F) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Scenario {
    name: &'static str,
    old: HugeFile,
    new: HugeFile,
}

/// The three huge-file edit patterns, sparse until materialized.
fn scenarios(size: u64, smoke: bool) -> Vec<Scenario> {
    let base = HugeFile::new(0xA11CE, size);
    let span = if smoke { 16 * 1024 } else { 64 * 1024 };
    let mut few = base.clone();
    for i in 0..4u64 {
        few = few.with_edit((2 * i + 1) * size / 8, &patch(span, 0xF00D ^ i));
    }
    let pages = if smoke { 32u64 } else { 256 };
    let mut scattered = base.clone();
    for i in 0..pages {
        scattered = scattered.with_edit(i * (size / pages), &patch(4096, 0xBEEF ^ i));
    }
    let prepend_len = if smoke { 64 * 1024 + 123 } else { (MIB as usize) + 123 };
    let prepend = base.clone().with_prepend(&patch(prepend_len, 0x5EED));
    vec![
        Scenario { name: "few_span", old: base.clone(), new: few },
        Scenario { name: "scattered", old: base.clone(), new: scattered },
        Scenario { name: "prepend_shift", old: base, new: prepend },
    ]
}

/// Asserts the hierarchy stats contract for one engaged diff. The skip
/// floor is 95% at the 1 GiB full scale; smoke's 32 MiB files leave a
/// proportionally larger share to the leaf walk (one coarse ~4 MiB chunk
/// around an edit is 12% of the file, and the descent cost-gate rightly
/// declines a full old-side re-index to shave it), so smoke uses 85%.
fn check_stats(name: &str, flavor: &str, stats: &HierarchyStats, new_len: u64, floor_pct: u64) {
    assert!(stats.engaged(), "{name}/{flavor}: hierarchy did not engage");
    assert_eq!(
        stats.bytes_skipped + stats.leaf_walk_bytes,
        new_len,
        "{name}/{flavor}: skipped + leaf-walked must cover the new file"
    );
    assert!(
        stats.bytes_skipped * 100 >= new_len * floor_pct,
        "{name}/{flavor}: only {} of {new_len} bytes skipped (floor {floor_pct}%)",
        stats.bytes_skipped
    );
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn ver(n: u64) -> Version {
    Version {
        client: ClientId(1),
        counter: n,
    }
}

/// Streamed upload with the hierarchy engaged and profiling armed: the
/// `delta.hierarchy` stage must be visible to the span profiler.
fn profiler_sees_hierarchy(workers: usize) -> u64 {
    let old = HugeFile::new(0x0B5, 2 * MIB).materialize();
    let new = HugeFile::new(0x0B5, 2 * MIB)
        .with_edit(512 * 1024, &patch(4096, 0x7AB))
        .materialize();
    let params = DeltaParams::new()
        .with_hierarchy(Some(HierarchyParams::default().with_min_file_bytes(1)));
    let msg = UpdateMsg {
        path: "/f".into(),
        base: Some(ver(1)),
        version: Some(ver(2)),
        payload: UpdatePayload::Delta {
            base_path: "/f".into(),
            delta: deltacfs_delta::Delta::from_ops(vec![]),
        },
        txn: Some(1),
        group: Some(GroupId {
            client: ClientId(1),
            seq: 1,
        }),
    };
    let mut server = CloudServer::new();
    server.apply_msg(&UpdateMsg {
        path: "/f".into(),
        base: None,
        version: Some(ver(1)),
        payload: UpdatePayload::Full(Payload::copy_from_slice(&old)),
        txn: None,
        group: None,
    });
    let obs = Obs::with_profiling(1 << 16);
    let mut link = Link::new(LinkSpec::pc());
    link.set_compute(PlatformProfile::pc());
    let cfg = PipelineConfig {
        chunk_budget: 256 * 1024,
        pipeline_depth: 4,
    };
    let mut cost = Cost::new();
    let _ = pipeline::upload_delta_streaming(
        &old,
        &new,
        &params,
        workers,
        &msg,
        &cfg,
        &mut link,
        &mut server,
        SimTime::ZERO,
        &obs,
        &mut cost,
        None,
    );
    assert_eq!(server.file("/f"), Some(&new[..]), "upload must land the new content");
    let stats = take_hierarchy_stats();
    assert!(stats.engaged(), "pipeline upload did not engage the hierarchy");
    let profiler = Profiler::new(obs.spans.records());
    let report = profiler.text_report();
    assert!(
        report.contains("delta.hierarchy"),
        "delta.hierarchy stage missing from the profiler report"
    );
    stats.bytes_skipped
}

fn main() {
    let smoke = smoke_mode();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.min(4);
    let samples = if smoke { 1 } else { 2 };
    let size = if smoke { 32 * MIB } else { 1024 * MIB };
    let skip_floor: u64 = if smoke { 85 } else { 95 };
    let params = DeltaParams::new();
    // The default gate is 64 MiB; the bench forces engagement so smoke
    // mode exercises the same code path on its smaller files.
    let hp = HierarchyParams::default().with_min_file_bytes(1);
    let hier_params = params.with_hierarchy(Some(hp));

    println!(
        "# hierarchical_delta (smoke={smoke}, file={} MiB, workers={workers}, samples={samples})\n",
        size / MIB
    );

    let mut rows = Vec::new();
    let mut headline = f64::INFINITY;
    for sc in scenarios(size, smoke) {
        let old = sc.old.materialize();
        let new = sc.new.materialize();
        let divergent = sc.new.divergent_bytes();
        let frac = divergent as f64 / new.len() as f64;
        assert!(
            frac <= 0.01,
            "{}: {divergent} divergent bytes exceed the 1% scenario budget",
            sc.name
        );

        // --- local flavour: identity first, then the clock. -------------
        let mut c_seq = Cost::new();
        let d_seq = local::diff(&old, &new, &params, &mut c_seq);
        let _ = take_hierarchy_stats();
        let mut c_h = Cost::new();
        let d_h = local::diff_parallel(&old, &new, &hier_params, workers, &mut c_h);
        let stats = take_hierarchy_stats();
        assert_eq!(d_h, d_seq, "{}: local hierarchical delta diverged", sc.name);
        assert_eq!(c_h, c_seq, "{}: local hierarchical cost diverged", sc.name);
        check_stats(sc.name, "local", &stats, new.len() as u64, skip_floor);
        let local_seq_ms =
            time_best_ms(samples, || local::diff(&old, &new, &params, &mut Cost::new()));
        let local_hier_ms = time_best_ms(samples, || {
            local::diff_parallel(&old, &new, &hier_params, workers, &mut Cost::new())
        });
        let _ = take_hierarchy_stats();

        // --- rsync flavour: signature precomputed (the cached-signature
        // hot path), diff-only timing. -----------------------------------
        let sig = rsync::signature(&old, &params, &mut Cost::new());
        let mut c_seq = Cost::new();
        let d_seq = rsync::diff(&sig, &new, &params, &mut c_seq);
        let mut c_h = Cost::new();
        let d_h = rsync::diff_hierarchical(&sig, &old, &new, &hp, &params, workers, &mut c_h);
        let rstats = take_hierarchy_stats();
        assert_eq!(d_h, d_seq, "{}: rsync hierarchical delta diverged", sc.name);
        assert_eq!(c_h, c_seq, "{}: rsync hierarchical cost diverged", sc.name);
        check_stats(sc.name, "rsync", &rstats, new.len() as u64, skip_floor);
        let rsync_seq_ms =
            time_best_ms(samples, || rsync::diff(&sig, &new, &params, &mut Cost::new()));
        let rsync_hier_ms = time_best_ms(samples, || {
            rsync::diff_hierarchical(&sig, &old, &new, &hp, &params, workers, &mut Cost::new())
        });
        let _ = take_hierarchy_stats();

        let local_speedup = local_seq_ms / local_hier_ms;
        let rsync_speedup = rsync_seq_ms / rsync_hier_ms;
        headline = headline.min(rsync_speedup);
        println!(
            "{:<14} div {:6.3}%  local {:8.1} -> {:8.1} ms ({local_speedup:5.2}x)  \
             rsync {:8.1} -> {:8.1} ms ({rsync_speedup:5.2}x)  skipped {:5.1}%",
            sc.name,
            frac * 100.0,
            local_seq_ms,
            local_hier_ms,
            rsync_seq_ms,
            rsync_hier_ms,
            rstats.bytes_skipped as f64 * 100.0 / new.len() as f64,
        );
        let local_json = serde_json::json!({
            "seq_ms": json_num(local_seq_ms),
            "hier_ms": json_num(local_hier_ms),
            "speedup": json_num(local_speedup),
        });
        let rsync_json = serde_json::json!({
            "seq_ms": json_num(rsync_seq_ms),
            "hier_ms": json_num(rsync_hier_ms),
            "speedup": json_num(rsync_speedup),
        });
        rows.push(serde_json::json!({
            "scenario": sc.name,
            "new_bytes": new.len() as u64,
            "divergent_bytes": divergent,
            "divergent_fraction": json_num(frac),
            "identity_ok": true,
            "levels_matched": rstats.levels_matched(),
            "bytes_skipped": rstats.bytes_skipped,
            "leaf_walk_bytes": rstats.leaf_walk_bytes,
            "local": local_json,
            "rsync": rsync_json,
        }));
    }
    println!();

    // --- small-file control: the 64 MiB gate must make the hierarchy a
    // no-op on small inputs — same output, never engaged. ----------------
    let small_control = {
        let ssize = 4 * MIB;
        let old = HugeFile::new(0x57A11, ssize).materialize();
        let new = HugeFile::new(0x57A11, ssize)
            .with_edit(ssize / 2, &patch(4096, 0x1CE))
            .materialize();
        let gated = params.with_hierarchy(Some(HierarchyParams::default()));
        let mut c_plain = Cost::new();
        let d_plain = local::diff_parallel(&old, &new, &params, workers, &mut c_plain);
        let mut c_gated = Cost::new();
        let d_gated = local::diff_parallel(&old, &new, &gated, workers, &mut c_gated);
        let stats = take_hierarchy_stats();
        assert!(!stats.engaged(), "the 64 MiB gate must keep small files on the plain path");
        assert_eq!(d_gated, d_plain, "gated small-file output diverged");
        assert_eq!(c_gated, c_plain, "gated small-file cost diverged");
        let plain_ms =
            time_best_ms(samples, || local::diff_parallel(&old, &new, &params, workers, &mut Cost::new()));
        let gated_ms =
            time_best_ms(samples, || local::diff_parallel(&old, &new, &gated, workers, &mut Cost::new()));
        println!(
            "small_control  {} MiB  plain {plain_ms:7.2} ms  gated {gated_ms:7.2} ms (not engaged)",
            ssize / MIB
        );
        serde_json::json!({
            "size_bytes": ssize,
            "plain_ms": json_num(plain_ms),
            "gated_ms": json_num(gated_ms),
            "engaged": false,
            "identity_ok": true,
        })
    };

    // --- profiler attribution must name the delta.hierarchy stage. ------
    let profiled_skipped = profiler_sees_hierarchy(workers);
    println!("profiler       delta.hierarchy stage visible ({profiled_skipped} bytes skipped)\n");

    if !smoke {
        assert!(
            headline >= 5.0,
            "hierarchical rsync speedup {headline:.2}x misses the 5x target"
        );
    }

    let out = serde_json::json!({
        "bench": "hierarchical_delta",
        "smoke": smoke,
        "host_cores": cores,
        "workers": workers,
        "samples": samples,
        "file_bytes": size,
        "block_size": params.block_size,
        "hierarchy_levels": hp.level_params().count(),
        "scenarios": rows,
        "small_file_control": small_control,
        "profiler_stage_visible": true,
        "headline_rsync_speedup_min": json_num(headline),
        "notes": "best-of-N wall clock; every hierarchical run asserted byte-identical (Delta and Cost) to sequential before timing; rsync times exclude the precomputed signature (cached on the receiver); speedup gate (>=5x, rsync flavour) enforced in full mode only",
    });
    let name = if smoke {
        "BENCH_10.smoke.json"
    } else {
        "BENCH_10.json"
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{path}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("wrote {path}");
}
