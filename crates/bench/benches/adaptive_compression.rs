//! Adaptive per-chunk wire compression (BENCH_8).
//!
//! Sweeps the streamed upload pipeline over compressible (log text,
//! SQLite-style pages) and incompressible (random, JPEG-like) content
//! on the mobile and LAN link profiles, raw wire vs the adaptive
//! [`WireCodec`]. The codec's contract under test:
//!
//! * **never worse than raw** — a frame ships compressed only when the
//!   envelope is strictly smaller, so the adaptive uplink can never
//!   exceed the raw uplink on any workload (incompressible overhead is
//!   exactly 0 bytes: raw frames carry no tag);
//! * **cost-benefit, not compress-always** — on the LAN profile the
//!   wire is free, so even compressible chunks ship raw; on mobile the
//!   1 MiB/s uplink makes text chunks clear the CPU bar easily;
//! * **back-pressure in compressed bytes** — the chunk_budget ×
//!   pipeline_depth in-flight cap holds against what actually crosses
//!   the wire (asserted here and in CI smoke);
//! * on the mobile profile, compressible uplink shrinks ≥ 1.5x with
//!   end-to-end time no worse than raw.
//!
//! Full mode writes `BENCH_8.json` at the repository root. Smoke mode
//! (`cargo bench -p deltacfs-bench --bench adaptive_compression -- --test`,
//! or `DELTACFS_BENCH_SMOKE=1`) shrinks the file and writes
//! `BENCH_8.smoke.json` instead, leaving the committed numbers alone.

use deltacfs_core::pipeline::{self, PipelineConfig};
use deltacfs_core::{
    ClientId, CloudServer, CodecPolicy, GroupId, Payload, UpdateMsg, UpdatePayload, Version,
    WireCodec,
};
use deltacfs_delta::{Cost, DeltaParams};
use deltacfs_net::{Link, LinkSpec, PlatformProfile, SimTime};
use deltacfs_obs::{MetricValue, Obs};

const MIB: usize = 1024 * 1024;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// Deterministic pseudo-random fill (xorshift-multiply LCG).
fn fill_random(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

/// Server-log text: the classic highly compressible sync payload.
fn make_text(size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 128);
    let mut i = 0u64;
    while out.len() < size {
        out.extend_from_slice(
            format!(
                "2026-08-07T12:{:02}:{:02} INFO request id={} path=/api/v1/items/{} \
                 status=200 latency_ms={}\n",
                i / 60 % 60,
                i % 60,
                i.wrapping_mul(31) % 100_000,
                i % 512,
                i.wrapping_mul(7) % 300,
            )
            .as_bytes(),
        );
        i += 1;
    }
    out.truncate(size);
    out
}

/// SQLite-style pages: 4 KiB B-tree pages with a structured header,
/// ascending cell pointers, and zero-padded free space — the paper's
/// transactional-update content, moderately compressible.
fn make_sqlite_pages(size: usize) -> Vec<u8> {
    let mut out = vec![0u8; size];
    for (p, page) in out.chunks_mut(4096).enumerate() {
        if page.len() < 128 {
            break;
        }
        page[..16].copy_from_slice(b"SQLite format 3\0");
        let cells = 20 + p % 10;
        for c in 0..cells {
            let at = 16 + c * 2;
            let ptr = (4096 - (c + 1) * 64) as u16;
            page[at..at + 2].copy_from_slice(&ptr.to_be_bytes());
        }
        // Record bodies: small integer payloads with repeating type codes.
        for c in 0..cells {
            let at = page.len().saturating_sub((c + 1) * 64);
            if at + 8 <= page.len() {
                page[at..at + 8].copy_from_slice(&((p * cells + c) as u64).to_be_bytes());
            }
        }
    }
    out
}

/// Entropy-coded media: random bytes with JPEG-style marker segments —
/// the probe must price it incompressible despite the sprinkled
/// structure.
fn make_jpeg_like(size: usize) -> Vec<u8> {
    let mut out = vec![0u8; size];
    fill_random(&mut out, 0x9E3779B97F4A7C15);
    for chunk in out.chunks_mut(8192) {
        if chunk.len() >= 4 {
            chunk[0] = 0xFF;
            chunk[1] = 0xDA;
        }
    }
    out
}

fn make_random(size: usize) -> Vec<u8> {
    let mut out = vec![0u8; size];
    fill_random(&mut out, 0x2545F4914F6CDD1D);
    out
}

fn ver(n: u64) -> Version {
    Version {
        client: ClientId(1),
        counter: n,
    }
}

fn delta_msg() -> UpdateMsg {
    UpdateMsg {
        path: "/f".into(),
        base: Some(ver(1)),
        version: Some(ver(2)),
        payload: UpdatePayload::Delta {
            base_path: "/f".into(),
            delta: deltacfs_delta::Delta::from_ops(vec![]),
        },
        txn: Some(1),
        group: Some(GroupId {
            client: ClientId(1),
            seq: 1,
        }),
    }
}

/// A server already holding the (empty) base content at version 1, so
/// the all-literal delta v1→v2 carries the workload content verbatim.
fn seeded_server() -> CloudServer {
    let mut server = CloudServer::new();
    server.apply_msg(&UpdateMsg {
        path: "/f".into(),
        base: None,
        version: Some(ver(1)),
        payload: UpdatePayload::Full(Payload::copy_from_slice(&[])),
        txn: None,
        group: None,
    });
    server
}

struct RunResult {
    uplink_bytes: u64,
    e2e_ms: u64,
    frames: u64,
    max_inflight_bytes: u64,
    compressed_chunks: u64,
    raw_chunks: u64,
    bytes_saved: u64,
}

fn counter(snap: &deltacfs_obs::Snapshot, name: &str) -> u64 {
    match snap.get(name) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// One streamed upload of `content` as an all-literal delta over
/// `link_spec`, with or without the adaptive codec.
fn run_upload(
    content: &[u8],
    link_spec: LinkSpec,
    profile: PlatformProfile,
    adaptive: bool,
    cfg: &PipelineConfig,
) -> RunResult {
    let params = DeltaParams::new();
    let msg = delta_msg();
    let obs = Obs::new();
    let mut link = Link::new(link_spec);
    let mut server = seeded_server();
    let mut cost = Cost::new();
    let mut codec = WireCodec::for_upload(CodecPolicy::Adaptive, profile, link_spec);
    codec.attach_obs(&obs);
    if adaptive {
        link.set_compute(profile);
    }
    let (report, _outcomes) = pipeline::upload_delta_streaming(
        &[],
        content,
        &params,
        1,
        &msg,
        cfg,
        &mut link,
        &mut server,
        SimTime::ZERO,
        &obs,
        &mut cost,
        adaptive.then_some(&mut codec),
    );
    assert_eq!(
        server.file("/f"),
        Some(content),
        "upload must land the exact content (adaptive={adaptive})"
    );
    let cap = (cfg.chunk_budget * cfg.pipeline_depth) as u64;
    assert!(
        report.max_inflight_bytes <= cap,
        "in-flight {} exceeds chunk_budget * pipeline_depth = {cap}",
        report.max_inflight_bytes
    );
    let snap = obs.registry.snapshot();
    RunResult {
        uplink_bytes: link.stats().bytes_up,
        e2e_ms: report.done.as_millis(),
        frames: report.frames,
        max_inflight_bytes: report.max_inflight_bytes,
        compressed_chunks: counter(&snap, "wire_compress_chunks"),
        raw_chunks: counter(&snap, "wire_raw_chunks"),
        bytes_saved: counter(&snap, "wire_compress_bytes_saved"),
    }
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn main() {
    let smoke = smoke_mode();
    let size = if smoke { 2 * MIB } else { 16 * MIB };
    let cfg = PipelineConfig {
        chunk_budget: if smoke { 64 * 1024 } else { 256 * 1024 },
        pipeline_depth: 4,
    };

    println!(
        "# adaptive_compression (smoke={smoke}, file={} MiB, budget={} KiB, depth={})\n",
        size / MIB,
        cfg.chunk_budget / 1024,
        cfg.pipeline_depth
    );

    let workloads: [(&str, bool, Vec<u8>); 4] = [
        ("text", true, make_text(size)),
        ("sqlite_pages", true, make_sqlite_pages(size)),
        ("random", false, make_random(size)),
        ("jpeg_like", false, make_jpeg_like(size)),
    ];
    let profiles: [(&str, LinkSpec, PlatformProfile); 2] = [
        ("mobile", LinkSpec::mobile(), PlatformProfile::mobile()),
        ("lan", LinkSpec::pc(), PlatformProfile::pc()),
    ];

    let mut runs = Vec::new();
    let mut min_compressible_mobile_reduction = f64::INFINITY;
    println!(
        "{:<14} {:<8} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "workload", "profile", "raw up", "adaptive up", "ratio", "raw e2e", "adapt e2e"
    );
    for (wname, compressible, content) in &workloads {
        for (pname, link_spec, profile) in &profiles {
            let raw = run_upload(content, *link_spec, *profile, false, &cfg);
            let adaptive = run_upload(content, *link_spec, *profile, true, &cfg);

            // Never worse than raw, on every workload and profile: a
            // frame only ships compressed when strictly smaller, and a
            // raw frame carries no tag.
            assert!(
                adaptive.uplink_bytes <= raw.uplink_bytes,
                "{wname}/{pname}: adaptive uplink {} exceeds raw {}",
                adaptive.uplink_bytes,
                raw.uplink_bytes
            );
            assert_eq!(
                adaptive.compressed_chunks + adaptive.raw_chunks,
                adaptive.frames,
                "{wname}/{pname}: every frame gets exactly one codec decision"
            );
            if !compressible {
                // The probe prices high-entropy chunks raw: zero
                // compressed frames, zero overhead (≤ 1% demanded,
                // 0 delivered — the uplinks are byte-identical).
                assert_eq!(
                    adaptive.compressed_chunks, 0,
                    "{wname}/{pname}: incompressible chunks must ship raw"
                );
                assert_eq!(
                    adaptive.uplink_bytes, raw.uplink_bytes,
                    "{wname}/{pname}: raw frames are untagged — overhead must be 0"
                );
            }
            let reduction = raw.uplink_bytes as f64 / adaptive.uplink_bytes as f64;
            if *compressible && *pname == "mobile" {
                min_compressible_mobile_reduction =
                    min_compressible_mobile_reduction.min(reduction);
                assert!(
                    adaptive.compressed_chunks > 0,
                    "{wname}/mobile: nothing compressed on the constrained link"
                );
                if !smoke {
                    assert!(
                        reduction >= 1.5,
                        "{wname}/mobile: uplink reduction {reduction:.2}x below the 1.5x floor"
                    );
                    assert!(
                        adaptive.e2e_ms <= raw.e2e_ms,
                        "{wname}/mobile: compression lost end-to-end ({} ms vs {} ms raw)",
                        adaptive.e2e_ms,
                        raw.e2e_ms
                    );
                }
            }

            println!(
                "{:<14} {:<8} {:>14} {:>14} {:>8.2}x {:>8}ms {:>8}ms",
                wname,
                pname,
                raw.uplink_bytes,
                adaptive.uplink_bytes,
                reduction,
                raw.e2e_ms,
                adaptive.e2e_ms
            );
            for (mode, r) in [("raw", &raw), ("adaptive", &adaptive)] {
                runs.push(serde_json::json!({
                    "workload": wname,
                    "profile": pname,
                    "mode": mode,
                    "compressible": compressible,
                    "uplink_bytes": r.uplink_bytes,
                    "e2e_ms": r.e2e_ms,
                    "frames": r.frames,
                    "max_inflight_bytes": r.max_inflight_bytes,
                    "compressed_chunks": r.compressed_chunks,
                    "raw_chunks": r.raw_chunks,
                    "bytes_saved": r.bytes_saved,
                }));
            }
        }
    }

    let out = serde_json::json!({
        "bench": "adaptive_compression",
        "smoke": smoke,
        "file_bytes": size,
        "chunk_budget": cfg.chunk_budget,
        "pipeline_depth": cfg.pipeline_depth,
        "min_compressible_mobile_reduction_x": json_num(min_compressible_mobile_reduction),
        "runs": runs,
        "notes": "all-literal streamed upload per cell; adaptive = WireCodec cost-benefit per chunk; raw frames untagged so incompressible overhead is exactly 0 bytes; e2e is simulated link time incl. modeled compression CPU (Pace::Measured)",
    });
    let name = if smoke {
        "BENCH_8.smoke.json"
    } else {
        "BENCH_8.json"
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{path}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("\nwrote {path}");
}
