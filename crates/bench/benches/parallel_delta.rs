//! Perf trajectory of the parallel delta engine (BENCH_3).
//!
//! Sweeps the delta worker-thread count over transactional-update files
//! (scattered in-place page edits plus a small insert, the paper's §III-A
//! motivating workload) and records:
//!
//! * `local::diff_parallel` wall-clock per (file size, threads), with the
//!   speedup over the single-threaded run of the same size;
//! * `rsync::diff_parallel` at the largest size, same sweep;
//! * the word-at-a-time vs byte-at-a-time compare primitive (the
//!   single-threaded win: every block confirm runs through it);
//! * checksum-store commit: `reindex_file` as one `write_batch` group
//!   commit vs a per-block `put_block` loop over the same `KvStore`.
//!
//! Every parallel run is checked byte-identical to its sequential twin
//! before being timed — a benchmark of a wrong answer is worthless.
//!
//! Full mode writes `BENCH_3.json` at the repository root. Smoke mode
//! (`cargo bench -p deltacfs-bench --bench parallel_delta -- --test`, or
//! `DELTACFS_BENCH_SMOKE=1`) shrinks sizes/samples for CI and writes
//! `BENCH_3.smoke.json` instead, leaving the committed numbers alone.

use std::time::Instant;

use deltacfs_core::ChecksumStore;
use deltacfs_delta::{local, rsync, Cost, DeltaParams};
use deltacfs_kvstore::KvStore;

const MIB: usize = 1024 * 1024;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// Deterministic pseudo-random fill (xorshift-multiply LCG).
fn fill_random(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

/// A transactional update: 16 scattered 4 KiB page rewrites plus a 64 B
/// insert near the front (log growth shifting everything after it).
fn make_input(size: usize) -> (Vec<u8>, Vec<u8>) {
    let mut old = vec![0u8; size];
    fill_random(&mut old, 0x2545F4914F6CDD1D);
    let mut new = old.clone();
    let page = 4096.min(size / 4).max(1);
    for i in 0..16usize {
        let at = (i * 2 + 1) * size / 33;
        let end = (at + page).min(size);
        let mut patch = vec![0u8; end - at];
        fill_random(&mut patch, 0xDEADBEEF ^ i as u64);
        new[at..end].copy_from_slice(&patch);
    }
    let insert_at = (size / 64).min(1000);
    new.splice(insert_at..insert_at, [0xAB; 64]);
    (old, new)
}

/// Best-of-`samples` wall-clock milliseconds for `f` (after one warmup).
fn time_best_ms<R, F: FnMut() -> R>(samples: usize, mut f: F) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Byte-at-a-time equality — the pre-optimization compare the word-wise
/// `bitwise_eq` replaced. Early-exit indexed loop, the shape the old code
/// compiled to.
fn byte_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for i in 0..a.len() {
        if a[i] != b[i] {
            return false;
        }
    }
    true
}

/// Word-at-a-time equality, mirroring the delta crate's `bitwise_eq` fast
/// path (8-byte little-endian words, scalar tail).
fn word_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        let x = u64::from_le_bytes(x.try_into().expect("8-byte chunk"));
        let y = u64::from_le_bytes(y.try_into().expect("8-byte chunk"));
        if x != y {
            return false;
        }
    }
    ta == tb
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn main() {
    let smoke = smoke_mode();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let samples = if smoke { 1 } else { 3 };
    let sizes: &[usize] = if smoke {
        &[256 * 1024]
    } else {
        &[4 * MIB, 16 * MIB, 64 * MIB]
    };
    let threads: Vec<usize> = (1..=4).collect();
    let params = DeltaParams::new();

    println!("# parallel_delta (smoke={smoke}, host cores={cores}, samples={samples})\n");

    // --- local::diff_parallel thread sweep -------------------------------
    let mut local_rows = Vec::new();
    for &size in sizes {
        let (old, new) = make_input(size);
        let reference = local::diff(&old, &new, &params, &mut Cost::new());
        let mut base_ms = 0.0f64;
        for &t in &threads {
            let got = local::diff_parallel(&old, &new, &params, t, &mut Cost::new());
            assert_eq!(got, reference, "parallel output diverged at {t} threads");
            let ms = time_best_ms(samples, || {
                local::diff_parallel(&old, &new, &params, t, &mut Cost::new())
            });
            if t == 1 {
                base_ms = ms;
            }
            let mib_s = size as f64 / MIB as f64 / (ms / 1e3);
            let speedup = base_ms / ms;
            println!(
                "local_diff  {:>3} MiB  {t} threads  {ms:8.2} ms  {mib_s:8.1} MiB/s  {speedup:.2}x vs 1t",
                size / MIB
            );
            local_rows.push(serde_json::json!({
                "size_bytes": size,
                "threads": t,
                "ms": json_num(ms),
                "mib_per_s": json_num(mib_s),
                "speedup_vs_1t": json_num(speedup),
            }));
        }
    }
    println!();

    // --- rsync::diff_parallel at the largest size ------------------------
    let mut rsync_rows = Vec::new();
    {
        let size = *sizes.last().expect("non-empty sizes");
        let (old, new) = make_input(size);
        let sig = rsync::signature(&old, &params, &mut Cost::new());
        let reference = rsync::diff(&sig, &new, &params, &mut Cost::new());
        let mut base_ms = 0.0f64;
        for &t in &threads {
            let got = rsync::diff_parallel(&sig, &new, &params, t, &mut Cost::new());
            assert_eq!(got, reference, "parallel rsync diverged at {t} threads");
            let ms = time_best_ms(samples, || {
                rsync::diff_parallel(&sig, &new, &params, t, &mut Cost::new())
            });
            if t == 1 {
                base_ms = ms;
            }
            let speedup = base_ms / ms;
            println!(
                "rsync_diff  {:>3} MiB  {t} threads  {ms:8.2} ms  {speedup:.2}x vs 1t",
                size / MIB
            );
            rsync_rows.push(serde_json::json!({
                "size_bytes": size,
                "threads": t,
                "ms": json_num(ms),
                "speedup_vs_1t": json_num(speedup),
            }));
        }
    }
    println!();

    // --- word-wise vs byte-wise compare primitive ------------------------
    let compare_json = {
        let size = if smoke { MIB } else { 64 * MIB };
        let mut a = vec![0u8; size];
        fill_random(&mut a, 0xC0FFEE);
        let b = a.clone();
        // Equal 4 KiB blocks: the block-confirm fast path, where the whole
        // block is walked.
        let byte_ms = time_best_ms(samples, || {
            a.chunks(4096).zip(b.chunks(4096)).all(|(x, y)| byte_eq(x, y))
        });
        let word_ms = time_best_ms(samples, || {
            a.chunks(4096).zip(b.chunks(4096)).all(|(x, y)| word_eq(x, y))
        });
        let speedup = byte_ms / word_ms;
        println!(
            "compare     {:>3} MiB  byte-wise {byte_ms:7.2} ms  word-wise {word_ms:7.2} ms  {speedup:.2}x",
            size / MIB
        );
        serde_json::json!({
            "bytes": size,
            "byte_wise_ms": json_num(byte_ms),
            "word_wise_ms": json_num(word_ms),
            "speedup": json_num(speedup),
        })
    };
    println!();

    // --- checksum commit: batched vs per-put -----------------------------
    let checksum_json = {
        let nblocks = if smoke { 64 } else { 1024 };
        let mut content = vec![0u8; nblocks * 4096];
        fill_random(&mut content, 0xBADC0DE);
        let dir = std::env::temp_dir().join(format!("bench3-kv-{}", std::process::id()));
        let run = |batched: bool, dir: &std::path::Path| -> f64 {
            time_best_ms(samples, || {
                std::fs::remove_dir_all(dir).ok();
                let kv = KvStore::open(dir).expect("open kvstore");
                let mut cs = ChecksumStore::new(kv, 4096);
                let mut cost = Cost::new();
                if batched {
                    cs.reindex_file("/f", &content, &mut cost).expect("reindex");
                } else {
                    for (i, block) in content.chunks(4096).enumerate() {
                        cs.put_block("/f", i as u64, block, &mut cost)
                            .expect("put_block");
                    }
                }
            })
        };
        let per_put_ms = run(false, &dir);
        let batched_ms = run(true, &dir);
        std::fs::remove_dir_all(&dir).ok();
        let speedup = per_put_ms / batched_ms;
        println!(
            "checksum    {nblocks} blocks  per-put {per_put_ms:7.2} ms  batched {batched_ms:7.2} ms  {speedup:.2}x"
        );
        serde_json::json!({
            "blocks": nblocks,
            "per_put_ms": json_num(per_put_ms),
            "batched_ms": json_num(batched_ms),
            "speedup": json_num(speedup),
        })
    };

    let out = serde_json::json!({
        "bench": "parallel_delta",
        "smoke": smoke,
        "host_cores": cores,
        "samples": samples,
        "local_diff": local_rows,
        "rsync_diff": rsync_rows,
        "bitwise_compare": compare_json,
        "checksum_commit": checksum_json,
        "notes": "best-of-N wall clock; parallel outputs asserted byte-identical to sequential before timing; thread speedups are bounded by host_cores",
    });
    let name = if smoke {
        "BENCH_3.smoke.json"
    } else {
        "BENCH_3.json"
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{path}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("\nwrote {path}");
}
