//! Substrate micro-benchmarks: the building blocks underneath the sync
//! engines — the embedded KV store (checksum persistence), the checksum
//! store's hot write path, and the wire codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use deltacfs_core::{wire, ChecksumStore, FileOpItem, UpdateMsg, UpdatePayload};
use deltacfs_delta::Cost;
use deltacfs_kvstore::{KeyValue, KvStore, MemStore};

fn bench_kvstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    group.sample_size(10);

    group.bench_function("memstore_put_get_1k", |b| {
        let mut store = MemStore::new();
        let mut i = 0u64;
        b.iter(|| {
            let key = i.to_be_bytes();
            store.put(&key, &[0u8; 32]).unwrap();
            let got = store.get(&key).unwrap();
            i = i.wrapping_add(1);
            std::hint::black_box(got)
        })
    });

    group.bench_function("kvstore_put_wal_append", |b| {
        let dir = std::env::temp_dir().join(format!("deltacfs-bench-kv-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = KvStore::open(&dir).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let key = i.to_be_bytes();
            store.put(&key, &[0u8; 32]).unwrap();
            i = i.wrapping_add(1);
        });
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

fn bench_checksum_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_store");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("put_block_4k", |b| {
        let mut cs = ChecksumStore::new(MemStore::new(), 4096);
        let block = vec![0xA5u8; 4096];
        let mut cost = Cost::new();
        let mut i = 0u64;
        b.iter(|| {
            cs.put_block("/f", i % 1024, &block, &mut cost).unwrap();
            i = i.wrapping_add(1);
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let msg = UpdateMsg {
        path: "/some/synced/file.db".into(),
        base: None,
        version: None,
        payload: UpdatePayload::Ops(vec![FileOpItem::Write {
            offset: 8192,
            data: deltacfs_core::Payload::from(vec![7u8; 4096]),
        }]),
        txn: Some(3),
        group: None,
    };
    let encoded = wire::encode(&msg);
    let mut group = c.benchmark_group("wire");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_4k_write", |b| b.iter(|| wire::encode(&msg)));
    group.bench_function("decode_4k_write", |b| {
        b.iter(|| wire::decode(&encoded).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_kvstore, bench_checksum_store, bench_wire);
criterion_main!(benches);
