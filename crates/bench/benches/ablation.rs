//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. bitwise comparison vs MD5 strong checksums in triggered delta
//!    encoding (the modified-librsync optimisation, §III-A);
//! 2. relation-table timeout on vs off — without relation entries the
//!    transactional-update trigger never fires and whole files ship;
//! 3. sync-queue upload delay (batching) vs immediate upload;
//! 4. op-level RPC granularity vs 4 KB delta blocks on sub-block writes
//!    (the WeChat crossover, §IV-C1);
//! 5. the undo-log delta compression of large in-place updates, on vs
//!    off at the 50 % threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments::{run_cell, EngineKind};
use deltacfs_core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs_delta::{local, rsync, Cost, DeltaParams};
use deltacfs_net::{LinkSpec, PlatformProfile, SimClock};
use deltacfs_vfs::Vfs;
use deltacfs_workloads::{replay, TraceConfig, WordTrace};

/// Ablation 1: bitwise vs MD5 confirmation on identical input.
fn ablate_bitwise_vs_md5(c: &mut Criterion) {
    let mut old = vec![0u8; 2 * 1024 * 1024];
    let mut state = 99u64;
    for b in old.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
    let mut new = old.clone();
    new[1_000_000..1_001_000].fill(0x11);
    let params = DeltaParams::new();

    let mut group = c.benchmark_group("ablation_strong_checksum");
    group.sample_size(10);
    group.bench_function("bitwise_local", |b| {
        b.iter(|| local::diff(&old, &new, &params, &mut Cost::new()))
    });
    group.bench_function("md5_rsync", |b| {
        b.iter(|| {
            let mut cost = Cost::new();
            let sig = rsync::signature(&old, &params, &mut cost);
            rsync::diff(&sig, &new, &params, &mut cost)
        })
    });
    group.finish();

    let mut c_local = Cost::new();
    local::diff(&old, &new, &params, &mut c_local);
    let mut c_rsync = Cost::new();
    let sig = rsync::signature(&old, &params, &mut c_rsync);
    rsync::diff(&sig, &new, &params, &mut c_rsync);
    println!(
        "\nablation 1 (strong checksum): bitwise strong-hashed {} B vs rsync {} B\n",
        c_local.bytes_strong_hashed, c_rsync.bytes_strong_hashed
    );
}

fn run_word_with_config(cfg: DeltaCfsConfig) -> (u64, u64) {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    let trace = WordTrace::new(TraceConfig::scaled(0.02));
    replay(&trace, &mut fs, &mut sys, &clock, 100);
    let r = sys.report();
    (r.traffic.bytes_up, r.traffic.msgs_up)
}

/// Ablations 2 & 3: relation timeout and upload delay.
fn ablate_relation_and_delay(c: &mut Criterion) {
    let base = DeltaCfsConfig::new();
    let no_relation = DeltaCfsConfig {
        relation_timeout_ms: 0,
        ..base
    };
    let no_delay = DeltaCfsConfig {
        upload_delay_ms: 0,
        ..base
    };
    let (up_base, msgs_base) = run_word_with_config(base);
    let (up_norel, _) = run_word_with_config(no_relation);
    let (up_nodelay, msgs_nodelay) = run_word_with_config(no_delay);
    println!(
        "\nablation 2 (relation table): word upload with relations {} B, without {} B",
        up_base, up_norel
    );
    println!(
        "ablation 3 (upload delay): msgs with 3 s delay {}, without {} (upload {} vs {} B)\n",
        msgs_base, msgs_nodelay, up_base, up_nodelay
    );
    assert!(
        up_norel > up_base,
        "disabling the relation table should inflate uploads"
    );

    let mut group = c.benchmark_group("ablation_relation_table");
    group.sample_size(10);
    group.bench_function("word_with_relation", |b| {
        b.iter(|| run_word_with_config(DeltaCfsConfig::new()))
    });
    group.bench_function("word_without_relation", |b| {
        b.iter(|| {
            run_word_with_config(DeltaCfsConfig {
                relation_timeout_ms: 0,
                ..DeltaCfsConfig::new()
            })
        })
    });
    group.finish();
}

/// Ablation 4: op-granularity RPC vs 4 KB-block delta on the WeChat trace.
fn ablate_rpc_vs_blocks(_c: &mut Criterion) {
    let cfg = TraceConfig::scaled(0.02);
    let pc = PlatformProfile::pc();
    let rpc = run_cell(EngineKind::DeltaCfs, "wechat", cfg, &pc, LinkSpec::pc());
    let blocks = run_cell(EngineKind::PlainRsync, "wechat", cfg, &pc, LinkSpec::pc());
    println!(
        "\nablation 4 (granularity): wechat upload — op-level RPC {} B vs 4 KB-block rsync {} B\n",
        rpc.bytes_up, blocks.bytes_up
    );
}

/// Ablation 5: undo-log delta compression of large in-place updates.
fn ablate_undo_delta(_c: &mut Criterion) {
    let run = |threshold: f64| -> u64 {
        let clock = SimClock::new();
        let cfg = DeltaCfsConfig {
            inplace_delta_threshold: threshold,
            ..DeltaCfsConfig::new()
        };
        let mut sys = DeltaCfsSystem::new(cfg, clock.clone(), LinkSpec::pc());
        let mut fs = Vfs::new();
        fs.enable_event_log();
        fs.create("/db").unwrap();
        fs.write("/db", 0, &vec![7u8; 1_000_000]).unwrap();
        for e in fs.drain_events() {
            sys.on_event(&e, &fs);
        }
        clock.advance(4000);
        sys.tick(&fs);
        let before = sys.report().traffic.bytes_up;
        // Rewrite 70% of the file with (mostly) identical content — a
        // journal replay.
        fs.write("/db", 0, &vec![7u8; 700_000]).unwrap();
        for e in fs.drain_events() {
            sys.on_event(&e, &fs);
        }
        clock.advance(4000);
        sys.tick(&fs);
        sys.report().traffic.bytes_up - before
    };
    let with_delta = run(0.5);
    let without = run(10.0); // threshold never reached: raw ops ship
    println!(
        "ablation 5 (undo-log delta): large in-place update uploads {} B with the optimisation, {} B without\n",
        with_delta, without
    );
    assert!(with_delta < without / 5);
}

/// Ablation 6: backindex transactional grouping vs strict FIFO (the
/// snapshot-style alternative): strict FIFO keeps causality trivially but
/// forfeits the delta/elision optimisations.
fn ablate_backindex(_c: &mut Criterion) {
    let (up_backindex, _) = run_word_with_config(DeltaCfsConfig::new());
    let (up_strict, _) = run_word_with_config(
        DeltaCfsConfig::new().with_causal_mode(deltacfs_core::CausalMode::StrictFifo),
    );
    let (up_snapshot, _) = run_word_with_config(DeltaCfsConfig::new().with_causal_mode(
        deltacfs_core::CausalMode::Snapshot {
            interval_ms: 10_000,
        },
    ));
    println!(
        "ablation 6 (causal modes): word upload {} B with backindex transactions, \
         {} B under strict FIFO, {} B under 10 s ViewBox-style snapshots\n",
        up_backindex, up_strict, up_snapshot
    );
    assert!(up_strict > up_backindex);
}

criterion_group!(
    benches,
    ablate_bitwise_vs_md5,
    ablate_relation_and_delay,
    ablate_rpc_vs_blocks,
    ablate_undo_delta,
    ablate_backindex
);
criterion_main!(benches);
