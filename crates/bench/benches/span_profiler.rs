//! Causal span profiler over the streamed upload pipeline (BENCH_9).
//!
//! Runs the BENCH_8 workload matrix (log text, SQLite-style pages,
//! random, JPEG-like × mobile/LAN) through
//! [`pipeline::upload_delta_streaming`] with causal span recording
//! armed, and reports the profiler's per-stage critical-path
//! attribution for each cell: how much of the end-to-end time the
//! pipeline spent in `delta.encode`, `wire.compress`, `wire.upload`,
//! and `pipeline.wait` (encode/upload overlap shows up as wait time
//! attributed away from the link). The contracts under test:
//!
//! * **observability is free when off** — a disabled recorder records
//!   nothing (one relaxed atomic load per span site), and the sim's
//!   deterministic outputs (uplink bytes, frame count, applied content,
//!   outcomes) are byte-identical with profiling on and off;
//! * **attribution balances** — per group, the per-stage attributed
//!   milliseconds sum exactly to the observed end-to-end time;
//! * **every committed stage appears** — the report names each stage
//!   that recorded a closed span, including the zero-width
//!   `server.stage`/`server.apply` pair;
//! * **enabled overhead ≤ 1%** — best-of-N wall-clock of the profiled
//!   run vs the disabled run (full mode only; wall-clock assertions
//!   are skipped in smoke).
//!
//! Full mode writes `BENCH_9.json` and a Perfetto-loadable
//! `BENCH_9.trace.json` at the repository root. Smoke mode
//! (`cargo bench -p deltacfs-bench --bench span_profiler -- --test`, or
//! `DELTACFS_BENCH_SMOKE=1`) writes `BENCH_9.smoke.json` /
//! `BENCH_9.trace.smoke.json` instead, leaving the committed numbers
//! alone.

use std::time::Instant;

use deltacfs_core::pipeline::{self, PipelineConfig};
use deltacfs_core::{
    ClientId, CloudServer, CodecPolicy, GroupId, Payload, UpdateMsg, UpdatePayload, Version,
    WireCodec,
};
use deltacfs_delta::{Cost, DeltaParams};
use deltacfs_net::{Link, LinkSpec, PlatformProfile, SimTime};
use deltacfs_obs::{Obs, Profiler};

const MIB: usize = 1024 * 1024;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// Deterministic pseudo-random fill (xorshift-multiply LCG).
fn fill_random(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

/// Server-log text: highly compressible.
fn make_text(size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 128);
    let mut i = 0u64;
    while out.len() < size {
        out.extend_from_slice(
            format!(
                "2026-08-07T12:{:02}:{:02} INFO request id={} path=/api/v1/items/{} \
                 status=200 latency_ms={}\n",
                i / 60 % 60,
                i % 60,
                i.wrapping_mul(31) % 100_000,
                i % 512,
                i.wrapping_mul(7) % 300,
            )
            .as_bytes(),
        );
        i += 1;
    }
    out.truncate(size);
    out
}

/// SQLite-style 4 KiB B-tree pages: moderately compressible.
fn make_sqlite_pages(size: usize) -> Vec<u8> {
    let mut out = vec![0u8; size];
    for (p, page) in out.chunks_mut(4096).enumerate() {
        if page.len() < 128 {
            break;
        }
        page[..16].copy_from_slice(b"SQLite format 3\0");
        let cells = 20 + p % 10;
        for c in 0..cells {
            let at = 16 + c * 2;
            let ptr = (4096 - (c + 1) * 64) as u16;
            page[at..at + 2].copy_from_slice(&ptr.to_be_bytes());
        }
        for c in 0..cells {
            let at = page.len().saturating_sub((c + 1) * 64);
            if at + 8 <= page.len() {
                page[at..at + 8].copy_from_slice(&((p * cells + c) as u64).to_be_bytes());
            }
        }
    }
    out
}

/// Entropy-coded media with JPEG-style markers: incompressible.
fn make_jpeg_like(size: usize) -> Vec<u8> {
    let mut out = vec![0u8; size];
    fill_random(&mut out, 0x9E3779B97F4A7C15);
    for chunk in out.chunks_mut(8192) {
        if chunk.len() >= 4 {
            chunk[0] = 0xFF;
            chunk[1] = 0xDA;
        }
    }
    out
}

fn make_random(size: usize) -> Vec<u8> {
    let mut out = vec![0u8; size];
    fill_random(&mut out, 0x2545F4914F6CDD1D);
    out
}

fn ver(n: u64) -> Version {
    Version {
        client: ClientId(1),
        counter: n,
    }
}

fn delta_msg() -> UpdateMsg {
    UpdateMsg {
        path: "/f".into(),
        base: Some(ver(1)),
        version: Some(ver(2)),
        payload: UpdatePayload::Delta {
            base_path: "/f".into(),
            delta: deltacfs_delta::Delta::from_ops(vec![]),
        },
        txn: Some(1),
        group: Some(GroupId {
            client: ClientId(1),
            seq: 1,
        }),
    }
}

/// A server already holding the (empty) base at version 1.
fn seeded_server() -> CloudServer {
    let mut server = CloudServer::new();
    server.apply_msg(&UpdateMsg {
        path: "/f".into(),
        base: None,
        version: Some(ver(1)),
        payload: UpdatePayload::Full(Payload::copy_from_slice(&[])),
        txn: None,
        group: None,
    });
    server
}

struct RunResult {
    uplink_bytes: u64,
    e2e_ms: u64,
    frames: u64,
    outcomes: usize,
    wall: std::time::Duration,
    obs: Obs,
}

/// One streamed adaptive-codec upload of `content`, profiled or not.
fn run_upload(
    content: &[u8],
    link_spec: LinkSpec,
    profile: PlatformProfile,
    profiled: bool,
    cfg: &PipelineConfig,
) -> RunResult {
    let params = DeltaParams::new();
    let msg = delta_msg();
    let obs = if profiled {
        Obs::with_profiling(1 << 16)
    } else {
        Obs::new()
    };
    let mut link = Link::new(link_spec);
    link.set_compute(profile);
    let mut server = seeded_server();
    let mut cost = Cost::new();
    let mut codec = WireCodec::for_upload(CodecPolicy::Adaptive, profile, link_spec);
    codec.attach_obs(&obs);
    let t0 = Instant::now();
    let (report, outcomes) = pipeline::upload_delta_streaming(
        &[],
        content,
        &params,
        1,
        &msg,
        cfg,
        &mut link,
        &mut server,
        SimTime::ZERO,
        &obs,
        &mut cost,
        Some(&mut codec),
    );
    let wall = t0.elapsed();
    assert_eq!(
        server.file("/f"),
        Some(content),
        "upload must land the exact content (profiled={profiled})"
    );
    RunResult {
        uplink_bytes: link.stats().bytes_up,
        e2e_ms: report.done.as_millis(),
        frames: report.frames,
        outcomes: outcomes.len(),
        wall,
        obs,
    }
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn main() {
    let smoke = smoke_mode();
    let size = if smoke { 2 * MIB } else { 16 * MIB };
    let overhead_reps = if smoke { 2 } else { 7 };
    let cfg = PipelineConfig {
        chunk_budget: if smoke { 64 * 1024 } else { 256 * 1024 },
        pipeline_depth: 4,
    };

    println!(
        "# span_profiler (smoke={smoke}, file={} MiB, budget={} KiB, depth={})\n",
        size / MIB,
        cfg.chunk_budget / 1024,
        cfg.pipeline_depth
    );

    // Disabled-path contract: a disabled recorder is inert — span sites
    // cost one relaxed atomic load and record nothing.
    {
        let off = Obs::new();
        for i in 0..10_000u64 {
            let id = off
                .spans
                .start(deltacfs_obs::GroupKey { client: 1, seq: i }, "a", "s", i, None);
            off.spans.end(id, i + 1);
        }
        assert!(off.spans.is_empty(), "disabled recorder recorded spans");
        assert_eq!(off.spans.dropped(), 0);
    }

    let workloads: [(&str, Vec<u8>); 4] = [
        ("text", make_text(size)),
        ("sqlite_pages", make_sqlite_pages(size)),
        ("random", make_random(size)),
        ("jpeg_like", make_jpeg_like(size)),
    ];
    let profiles: [(&str, LinkSpec, PlatformProfile); 2] = [
        ("mobile", LinkSpec::mobile(), PlatformProfile::mobile()),
        ("lan", LinkSpec::pc(), PlatformProfile::pc()),
    ];

    let mut runs = Vec::new();
    let mut trace_json: Option<String> = None;
    println!(
        "{:<14} {:<8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "profile", "spans", "e2e", "encode", "compress", "upload", "wait"
    );
    for (wname, content) in &workloads {
        for (pname, link_spec, profile) in &profiles {
            let off = run_upload(content, *link_spec, *profile, false, &cfg);
            let on = run_upload(content, *link_spec, *profile, true, &cfg);

            // Profiling must not change what the sim does — only what it
            // remembers. (Timings are Pace::Measured and wall-derived,
            // so the deterministic outputs are the bytes and counts.)
            assert_eq!(on.uplink_bytes, off.uplink_bytes, "{wname}/{pname}: uplink differs");
            assert_eq!(on.frames, off.frames, "{wname}/{pname}: frame count differs");
            assert_eq!(on.outcomes, off.outcomes, "{wname}/{pname}: outcomes differ");
            assert!(off.obs.spans.is_empty(), "{wname}/{pname}: disabled run recorded spans");
            assert_eq!(on.obs.spans.dropped(), 0, "{wname}/{pname}: span table overflowed");

            let profiler = Profiler::new(on.obs.spans.records());
            let groups = profiler.groups();
            assert_eq!(groups.len(), 1, "{wname}/{pname}: one group uploaded");
            let g = &groups[0];
            assert_eq!(
                g.e2e_ms, on.e2e_ms,
                "{wname}/{pname}: span-tree e2e must match the pipeline report"
            );
            let total: u64 = g.attribution.iter().map(|(_, ms)| ms).sum();
            assert_eq!(
                total, g.e2e_ms,
                "{wname}/{pname}: attribution must sum to e2e"
            );
            let report = profiler.text_report();
            for stage in ["delta.encode", "wire.upload", "server.stage", "server.apply"] {
                assert!(
                    report.contains(stage),
                    "{wname}/{pname}: committed stage {stage} missing from report"
                );
            }
            let ms_of = |stage: &str| -> u64 {
                g.attribution
                    .iter()
                    .find(|(s, _)| s == stage)
                    .map(|(_, ms)| *ms)
                    .unwrap_or(0)
            };
            println!(
                "{:<14} {:<8} {:>7} {:>7}ms {:>7}ms {:>7}ms {:>7}ms {:>7}ms",
                wname,
                pname,
                profiler.records().len(),
                g.e2e_ms,
                ms_of("delta.encode"),
                ms_of("wire.compress"),
                ms_of("wire.upload"),
                ms_of("pipeline.wait"),
            );
            let attribution: Vec<serde_json::Value> = g
                .attribution
                .iter()
                .map(|(stage, ms)| serde_json::json!({ "stage": stage, "ms": ms }))
                .collect();
            runs.push(serde_json::json!({
                "workload": wname,
                "profile": pname,
                "uplink_bytes": on.uplink_bytes,
                "frames": on.frames,
                "spans": profiler.records().len() as u64,
                "e2e_ms": g.e2e_ms,
                "attribution": attribution,
            }));
            if trace_json.is_none() {
                trace_json = Some(profiler.chrome_trace());
            }
        }
    }

    // Enabled-overhead contract: best-of-N wall clock, profiled vs not,
    // on the text/mobile cell (the heaviest: real encode + compression).
    let (_, content) = &workloads[0];
    let (_, link_spec, profile) = &profiles[0];
    let best = |profiled: bool| -> f64 {
        (0..overhead_reps)
            .map(|_| {
                run_upload(content, *link_spec, *profile, profiled, &cfg)
                    .wall
                    .as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let wall_off = best(false);
    let wall_on = best(true);
    let overhead_pct = (wall_on / wall_off - 1.0) * 100.0;
    println!(
        "\nenabled overhead: best-of-{overhead_reps} {:.1}ms profiled vs {:.1}ms off ({overhead_pct:+.2}%)",
        wall_on * 1e3,
        wall_off * 1e3
    );
    if !smoke {
        assert!(
            overhead_pct <= 1.0,
            "profiling overhead {overhead_pct:.2}% exceeds the 1% budget"
        );
    }

    let out = serde_json::json!({
        "bench": "span_profiler",
        "smoke": smoke,
        "file_bytes": size,
        "chunk_budget": cfg.chunk_budget,
        "pipeline_depth": cfg.pipeline_depth,
        "overhead_best_of": overhead_reps,
        "wall_ms_profiled": json_num(wall_on * 1e3),
        "wall_ms_disabled": json_num(wall_off * 1e3),
        "overhead_pct": json_num(overhead_pct),
        "runs": runs,
        "notes": "adaptive-codec streamed upload per cell (Pace::Measured); attribution = critical-path ms per stage, summing exactly to e2e; server.stage/server.apply are zero-width on the simulated clock; overhead asserted <= 1% in full mode only",
    });
    let (name, trace_name) = if smoke {
        ("BENCH_9.smoke.json", "BENCH_9.trace.smoke.json")
    } else {
        ("BENCH_9.json", "BENCH_9.trace.json")
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{root}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("wrote {path}");
    let trace_path = format!("{root}{trace_name}");
    std::fs::write(&trace_path, trace_json.expect("at least one profiled run"))
        .expect("write trace json");
    println!("wrote {trace_path} (open in Perfetto)");
}
