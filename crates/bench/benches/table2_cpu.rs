//! Table II: CPU ticks of Dropbox/Seafile/NFSv4/DeltaCFS on the four
//! traces (PC), plus Dropsync/DeltaCFS on mobile. Prints the table, then
//! benchmarks a cheap and an expensive representative cell.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments::{run_cell, table2, EngineKind};
use deltacfs_bench::table::render_table2;
use deltacfs_net::{LinkSpec, PlatformProfile};
use deltacfs_workloads::TraceConfig;

fn table2_bench(c: &mut Criterion) {
    let rows = table2(0.05);
    println!("\n{}", render_table2(&rows));

    let mut group = c.benchmark_group("table2_cells");
    group.sample_size(10);
    let cfg = TraceConfig::scaled(0.01);
    let pc = PlatformProfile::pc();
    group.bench_function("deltacfs_append", |b| {
        b.iter(|| run_cell(EngineKind::DeltaCfs, "append", cfg, &pc, LinkSpec::pc()))
    });
    group.bench_function("dropbox_wechat", |b| {
        b.iter(|| run_cell(EngineKind::Dropbox, "wechat", cfg, &pc, LinkSpec::pc()))
    });
    group.finish();
}

criterion_group!(benches, table2_bench);
criterion_main!(benches);
