//! Table V: fault-injection matrix — convergence under seeded loss,
//! duplication, reordering, server crash/restart, and disconnection.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments::table5;
use deltacfs_bench::table::render_table5;

const SEEDS: &[u64] = &[1, 2, 3, 4];

fn table5_bench(c: &mut Criterion) {
    let rows = table5(SEEDS);
    println!("\n{}", render_table5(&rows));
    for row in &rows {
        assert!(
            row.converged,
            "scenario {} seed {} did not converge",
            row.scenario, row.seed
        );
        assert_eq!(row.gave_up, 0, "scenario {} seed {}", row.scenario, row.seed);
    }

    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("fault_matrix_one_seed", |b| b.iter(|| table5(&[1])));
    group.finish();
}

criterion_group!(benches, table5_bench);
criterion_main!(benches);
