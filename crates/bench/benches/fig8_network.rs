//! Figure 8: network transmission on PC for the four traces, including
//! the whole-file-rsync reference on WeChat.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments::{fig8, run_cell, EngineKind};
use deltacfs_bench::table::render_fig8;
use deltacfs_net::{LinkSpec, PlatformProfile};
use deltacfs_workloads::TraceConfig;

fn fig8_bench(c: &mut Criterion) {
    let rows = fig8(0.05);
    println!("\n{}", render_fig8(&rows));

    let mut group = c.benchmark_group("fig8_cells");
    group.sample_size(10);
    let cfg = TraceConfig::scaled(0.01);
    let pc = PlatformProfile::pc();
    group.bench_function("nfs_word", |b| {
        b.iter(|| run_cell(EngineKind::Nfs, "word", cfg, &pc, LinkSpec::pc()))
    });
    group.bench_function("deltacfs_word", |b| {
        b.iter(|| run_cell(EngineKind::DeltaCfs, "word", cfg, &pc, LinkSpec::pc()))
    });
    group.finish();
}

criterion_group!(benches, fig8_bench);
criterion_main!(benches);
