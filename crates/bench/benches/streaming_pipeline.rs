//! Streaming zero-copy upload pipeline (BENCH_5).
//!
//! The transactional 64 MiB workload (every 4th 4 KiB page rewritten,
//! ~25% churn) is encoded and uploaded two ways:
//!
//! * **materialized** — `local::diff` builds the whole `Delta`, then the
//!   full message goes on the link in one shot: peak client memory
//!   tracks the delta size and the link idles while the encoder works;
//! * **streamed** — `pipeline::upload_delta_streaming` runs the chunked
//!   encoder on a second thread and uploads each frame as it lands
//!   (`Pace::Measured`: real encoder elapsed time is mapped onto the
//!   simulated clock, so upload of chunk `k` overlaps the encoding of
//!   chunk `k + 1`).
//!
//! Recorded into `BENCH_5.json`:
//!
//! * `max_inflight_bytes` — the peak-RSS proxy: bytes queued between
//!   encoder and uploader, bounded by `chunk_budget * pipeline_depth`
//!   byte-based back-pressure (asserted here and in CI smoke);
//! * the in-flight reduction versus materializing the delta (the issue
//!   demands ≥ 8x on the full 64 MiB workload);
//! * end-to-end encode+upload latency on the slow-link (mobile)
//!   profile for both paths — overlap must not lose to one-shot.
//!
//! Correctness is asserted before anything is timed: the streamed
//! upload must leave the server holding exactly the new content, with
//! uploaded-byte accounting identical to the materialized message.
//!
//! Full mode writes `BENCH_5.json` at the repository root. Smoke mode
//! (`cargo bench -p deltacfs-bench --bench streaming_pipeline -- --test`,
//! or `DELTACFS_BENCH_SMOKE=1`) shrinks the file and writes
//! `BENCH_5.smoke.json` instead, leaving the committed numbers alone.

use deltacfs_core::pipeline::{self, PipelineConfig};
use deltacfs_core::{
    ClientId, CloudServer, GroupId, Payload, UpdateMsg, UpdatePayload, Version, ACK_WIRE_BYTES,
};
use deltacfs_delta::{local, Cost, DeltaParams};
use deltacfs_net::{Link, LinkSpec, SimTime};
use deltacfs_obs::Obs;

const MIB: usize = 1024 * 1024;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// Deterministic pseudo-random fill (xorshift-multiply LCG).
fn fill_random(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

/// The §III-A transactional update at scale: every 4th 4 KiB page
/// rewritten — about a quarter of the file churns, three quarters are
/// copy-matched.
fn make_input(size: usize) -> (Vec<u8>, Vec<u8>) {
    let mut old = vec![0u8; size];
    fill_random(&mut old, 0x2545F4914F6CDD1D);
    let mut new = old.clone();
    for (i, page) in new.chunks_mut(4096).enumerate() {
        if i % 4 == 0 {
            fill_random(page, 0xDEADBEEF ^ i as u64);
        }
    }
    (old, new)
}

fn ver(n: u64) -> Version {
    Version {
        client: ClientId(1),
        counter: n,
    }
}

fn base_msg(payload: UpdatePayload, version: u64, group: Option<u64>) -> UpdateMsg {
    UpdateMsg {
        path: "/f".into(),
        base: (version > 1).then(|| ver(version - 1)),
        version: Some(ver(version)),
        payload,
        txn: group,
        group: group.map(|seq| GroupId {
            client: ClientId(1),
            seq,
        }),
    }
}

/// A server already holding the base content at version 1.
fn seeded_server(old: &[u8]) -> CloudServer {
    let mut server = CloudServer::new();
    server.apply_msg(&base_msg(
        UpdatePayload::Full(Payload::copy_from_slice(old)),
        1,
        None,
    ));
    server
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn main() {
    let smoke = smoke_mode();
    let size = if smoke { 4 * MIB } else { 64 * MIB };
    let cfg = PipelineConfig {
        chunk_budget: if smoke { 64 * 1024 } else { 256 * 1024 },
        pipeline_depth: 4,
    };
    let params = DeltaParams::new();
    let workers = 1; // one encoder thread; the overlap is encode vs upload
    let link_spec = LinkSpec::mobile();

    println!(
        "# streaming_pipeline (smoke={smoke}, file={} MiB, budget={} KiB, depth={})\n",
        size / MIB,
        cfg.chunk_budget / 1024,
        cfg.pipeline_depth
    );

    let (old, new) = make_input(size);

    // --- materialized reference: encode fully, then one-shot upload ------
    let enc_start = std::time::Instant::now();
    let delta = local::diff(&old, &new, &params, &mut Cost::new());
    let encode_ms = enc_start.elapsed().as_secs_f64() * 1e3;
    let msg = base_msg(
        UpdatePayload::Delta {
            base_path: "/f".into(),
            delta,
        },
        2,
        Some(1),
    );
    let wire_bytes = msg.wire_size();
    let mat_done = {
        let mut link = Link::new(link_spec);
        let mut server = seeded_server(&old);
        let done = link.upload(
            wire_bytes,
            SimTime::ZERO.plus_millis(encode_ms.ceil() as u64),
        );
        server.apply_txn(std::slice::from_ref(&msg));
        link.download(ACK_WIRE_BYTES, SimTime::ZERO);
        assert_eq!(server.file("/f"), Some(&new[..]), "materialized apply");
        assert_eq!(link.stats().bytes_up, wire_bytes);
        done
    };

    // --- streamed: encode→frame→upload overlapped ------------------------
    let mut link = Link::new(link_spec);
    let mut server = seeded_server(&old);
    let mut cost = Cost::new();
    let (report, _outcomes) = pipeline::upload_delta_streaming(
        &old,
        &new,
        &params,
        workers,
        &msg,
        &cfg,
        &mut link,
        &mut server,
        SimTime::ZERO,
        &Obs::new(),
        &mut cost,
        None,
    );
    assert_eq!(server.file("/f"), Some(&new[..]), "streamed apply");
    assert_eq!(
        link.stats().bytes_up,
        wire_bytes,
        "streamed accounting must equal the materialized wire size"
    );

    // Peak in-flight bytes are a configuration constant, not a function
    // of the delta size (the back-pressure contract CI smoke re-checks).
    let cap = (cfg.chunk_budget * cfg.pipeline_depth) as u64;
    assert!(
        report.max_inflight_bytes <= cap,
        "max_inflight {} exceeds chunk_budget * pipeline_depth = {}",
        report.max_inflight_bytes,
        cap
    );
    let reduction = wire_bytes as f64 / report.max_inflight_bytes as f64;
    if !smoke {
        assert!(
            reduction >= 8.0,
            "in-flight reduction {reduction:.1}x below the 8x floor"
        );
        assert!(
            report.done <= mat_done,
            "overlap lost to one-shot: streamed {:?} vs materialized {:?}",
            report.done,
            mat_done
        );
    }

    println!("delta wire bytes      {wire_bytes:>12}");
    println!("max in-flight bytes   {:>12}", report.max_inflight_bytes);
    println!("in-flight reduction   {reduction:>11.1}x");
    println!("frames                {:>12}", report.frames);
    println!("encode (one-shot)     {encode_ms:>10.1} ms");
    println!("e2e materialized      {:>10} ms", mat_done.as_millis());
    println!("e2e streamed          {:>10} ms", report.done.as_millis());

    let out = serde_json::json!({
        "bench": "streaming_pipeline",
        "smoke": smoke,
        "file_bytes": size,
        "chunk_budget": cfg.chunk_budget,
        "pipeline_depth": cfg.pipeline_depth,
        "delta_wire_bytes": wire_bytes,
        "max_inflight_bytes": report.max_inflight_bytes,
        "inflight_reduction_x": json_num(reduction),
        "frames": report.frames,
        "encode_ms": json_num(encode_ms),
        "e2e_materialized_ms": mat_done.as_millis(),
        "e2e_streamed_ms": report.done.as_millis(),
        "link": "mobile (1 MiB/s up, 80 ms latency)",
        "notes": "same workload both paths; streamed upload asserted byte-identical in accounting and applied content; e2e times are simulated link time with real encoder elapsed mapped in (Pace::Measured)",
    });
    let name = if smoke {
        "BENCH_5.smoke.json"
    } else {
        "BENCH_5.json"
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{path}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("\nwrote {path}");
}
