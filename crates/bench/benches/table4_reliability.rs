//! Table IV: reliability — corruption detection, crash-inconsistency
//! detection, and causal upload order.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments::table4;
use deltacfs_bench::table::render_table4;

fn table4_bench(c: &mut Criterion) {
    let rows = table4();
    println!("\n{}", render_table4(&rows));
    assert_eq!(rows[2].corrupted, "detect");
    assert_eq!(rows[2].causal, "Y");

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("full_reliability_suite", |b| b.iter(table4));
    group.finish();
}

criterion_group!(benches, table4_bench);
criterion_main!(benches);
