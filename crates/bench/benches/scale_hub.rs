//! Massive-client SyncHub scale bench (BENCH_6).
//!
//! Drives 500 tenants × 2 clients = 1000 simulated clients through the
//! sharded hub (DESIGN.md §13), sweeping the shard count over 1 / 4 / 16
//! on the identical workload. Each tenant replays a deterministic slice
//! of a `deltacfs-workloads` trace — the mix cycles append / random
//! in-place write / transactional word save — remapped under the
//! tenant's `/t<n>/` namespace, so routing, striped locks and batched
//! per-shard fan-out all see realistic grouped traffic.
//!
//! Recorded into `BENCH_6.json` per shard count:
//!
//! * wall-clock throughput (applied server groups per second and trace
//!   ops per second) over the pump phase;
//! * server-side apply latency percentiles (p50/p90/p99, µs) from the
//!   `hub_apply_latency_us` histogram (`HubConfig::latency_histogram`);
//! * the per-shard queue-depth and file-count gauges after the run —
//!   queue depths must be back to zero (bounded: nothing leaked).
//!
//! Correctness is asserted before anything is reported: every tenant's
//! two clients must converge with the server on the tenant's namespace,
//! under every shard count, and the multi-shard runs must apply exactly
//! as many groups as the single-shard baseline.
//!
//! Full mode writes `BENCH_6.json` at the repository root. Smoke mode
//! (`cargo bench -p deltacfs-bench --bench scale_hub -- --test`, or
//! `DELTACFS_BENCH_SMOKE=1`) shrinks the per-tenant workload — the
//! client count stays at 1000 — and writes `BENCH_6.smoke.json`.

use deltacfs_core::{DeltaCfsConfig, HubConfig, SyncHub};
use deltacfs_net::{LinkSpec, SimClock};
use deltacfs_obs::Obs;
use deltacfs_workloads::{AppendTrace, RandomWriteTrace, Trace, TraceConfig, TraceOp, WordTrace};

const TENANTS: usize = 500;
const CLIENTS_PER_TENANT: usize = 2;
const SHARD_SWEEP: [usize; 3] = [1, 4, 16];

/// Buckets of the hub's opt-in apply-latency histogram (µs). Must match
/// `hub_apply_latency_us` so the bench gets the live shared cell.
const APPLY_LATENCY_BUCKETS_US: [u64; 12] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
];

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// The deterministic per-tenant workload: a small trace slice with the
/// personality cycling by tenant index, every path remapped under the
/// tenant's namespace.
fn tenant_ops(tenant: usize, scale: f64) -> Vec<TraceOp> {
    let cfg = TraceConfig {
        scale,
        seed: 0xC0FFEE ^ tenant as u64,
    };
    let mut ops = Vec::new();
    {
        let mut sink = |t: deltacfs_workloads::TimedOp| ops.push(t.op);
        match tenant % 3 {
            0 => AppendTrace::new(cfg).generate(&mut sink),
            1 => RandomWriteTrace::new(cfg).generate(&mut sink),
            _ => WordTrace::new(cfg).generate(&mut sink),
        }
    }
    let prefix = format!("/t{tenant}");
    let remap = |p: &str| format!("{prefix}{p}");
    ops.into_iter()
        .map(|op| match op {
            TraceOp::Create(p) => TraceOp::Create(remap(&p)),
            TraceOp::Mkdir(p) => TraceOp::Mkdir(remap(&p)),
            TraceOp::Write { path, offset, data } => TraceOp::Write {
                path: remap(&path),
                offset,
                data,
            },
            TraceOp::Truncate { path, size } => TraceOp::Truncate {
                path: remap(&path),
                size,
            },
            TraceOp::Rename { src, dst } => TraceOp::Rename {
                src: remap(&src),
                dst: remap(&dst),
            },
            TraceOp::Link { src, dst } => TraceOp::Link {
                src: remap(&src),
                dst: remap(&dst),
            },
            TraceOp::Unlink(p) => TraceOp::Unlink(remap(&p)),
            TraceOp::Close(p) => TraceOp::Close(remap(&p)),
            TraceOp::Fsync(p) => TraceOp::Fsync(remap(&p)),
        })
        .collect()
}

fn apply_op(hub: &mut SyncHub, idx: usize, op: &TraceOp) {
    let fs = hub.fs_mut(idx);
    // Trace slices replay against a hub-fed Vfs; ops that race a
    // concurrent rename/unlink in the slice are skipped, identically
    // for every shard count.
    let _ = match op {
        TraceOp::Create(p) => fs.create(p),
        TraceOp::Mkdir(p) => fs.mkdir_all(p),
        TraceOp::Write { path, offset, data } => fs.write(path, *offset, data),
        TraceOp::Truncate { path, size } => fs.truncate(path, *size),
        TraceOp::Rename { src, dst } => fs.rename(src, dst),
        TraceOp::Link { src, dst } => fs.link(src, dst),
        TraceOp::Unlink(p) => fs.unlink(p),
        TraceOp::Close(p) => fs.close_path(p),
        TraceOp::Fsync(p) => fs.fsync(p),
    };
    // Hand the event to the engine right away: the interception layer
    // (checksum verify, undo log) reads the live file and assumes
    // prompt delivery — see `SyncHub::ingest`.
    hub.ingest(idx);
}

struct RunResult {
    shards: usize,
    wall_ms: f64,
    groups_applied: u64,
    ops_replayed: u64,
    groups_per_sec: f64,
    ops_per_sec: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    cross_shard_groups: u64,
    max_queue_depth: i64,
    shard_files: Vec<i64>,
}

/// One full sweep entry: build the 1000-client hub, replay every
/// tenant's ops in `rounds` interleaved rounds, converge, verify.
fn run(shards: usize, rounds: usize, scale: f64) -> RunResult {
    let clock = SimClock::new();
    let obs = Obs::new();
    let cfg = HubConfig::new()
        .with_shards(shards)
        .with_latency_histogram(true);
    let mut hub = SyncHub::with_config(clock.clone(), cfg);
    hub.enable_observability(obs.clone());

    let mut writers = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let ns = format!("t{t}");
        let w = hub.add_client_in(&ns, DeltaCfsConfig::new(), LinkSpec::datacenter());
        for _ in 1..CLIENTS_PER_TENANT {
            hub.add_client_in(&ns, DeltaCfsConfig::new(), LinkSpec::datacenter());
        }
        hub.fs_mut(w).mkdir_all(&format!("/{ns}")).unwrap();
        writers.push(w);
    }
    assert!(hub.client_count() >= 1000, "scale floor is 1000 clients");

    let all_ops: Vec<Vec<TraceOp>> = (0..TENANTS).map(|t| tenant_ops(t, scale)).collect();
    let ops_replayed: u64 = all_ops.iter().map(|o| o.len() as u64).sum();

    // The measured phase: interleaved rounds of tenant activity, each
    // followed by a parallel pump cycle across all 1000 clients.
    let started = std::time::Instant::now();
    for r in 0..rounds {
        for (t, ops) in all_ops.iter().enumerate() {
            let lo = r * ops.len() / rounds;
            let hi = (r + 1) * ops.len() / rounds;
            for op in &ops[lo..hi] {
                apply_op(&mut hub, writers[t], op);
            }
        }
        hub.pump_parallel();
        clock.advance(4_000);
        hub.pump_parallel();
    }
    clock.advance(10_000);
    hub.pump_parallel();
    hub.flush_parallel();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Convergence: both clients of every tenant agree with the server
    // on the tenant's namespace.
    for (t, &base) in writers.iter().enumerate() {
        let ns = format!("t{t}");
        for path in hub.server().paths_in_namespace(&ns) {
            let server = hub.server().file(&path).expect("listed path exists");
            for c in 0..CLIENTS_PER_TENANT {
                let local = hub.fs(base + c).peek_all(&path).unwrap_or_default();
                assert_eq!(
                    local, server,
                    "shards={shards}: client {} diverged on {path}",
                    base + c
                );
            }
        }
    }

    let hist = obs.registry.histogram(
        "hub_apply_latency_us",
        "server-side group apply latency (µs)",
        &APPLY_LATENCY_BUCKETS_US,
    );
    let groups_applied = hist.count();
    assert!(groups_applied > 0, "latency histogram never observed");

    let snap = hub.export_metrics();
    let mut max_queue_depth = 0i64;
    let mut shard_files = Vec::with_capacity(shards);
    for s in 0..shards {
        let depth = match snap.get_labeled("shard_queue_depth", &s.to_string()) {
            Some(deltacfs_obs::MetricValue::Gauge(v)) => *v,
            other => panic!("shard_queue_depth{{shard={s}}}: unexpected {other:?}"),
        };
        assert_eq!(depth, 0, "shards={shards}: shard {s} queue depth leaked");
        max_queue_depth = max_queue_depth.max(depth);
        match snap.get_labeled("shard_files", &s.to_string()) {
            Some(deltacfs_obs::MetricValue::Gauge(v)) => shard_files.push(*v),
            other => panic!("shard_files{{shard={s}}}: unexpected {other:?}"),
        }
    }

    let secs = wall_ms / 1e3;
    RunResult {
        shards,
        wall_ms,
        groups_applied,
        ops_replayed,
        groups_per_sec: groups_applied as f64 / secs,
        ops_per_sec: ops_replayed as f64 / secs,
        p50_us: hist.quantile(0.50).unwrap(),
        p90_us: hist.quantile(0.90).unwrap(),
        p99_us: hist.quantile(0.99).unwrap(),
        cross_shard_groups: hub.server().cross_shard_groups(),
        max_queue_depth,
        shard_files,
    }
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn main() {
    let smoke = smoke_mode();
    let (rounds, scale) = if smoke { (2, 0.002) } else { (4, 0.01) };

    println!(
        "# scale_hub (smoke={smoke}, clients={}, tenants={TENANTS}, rounds={rounds}, scale={scale})\n",
        TENANTS * CLIENTS_PER_TENANT
    );

    let mut results = Vec::new();
    for shards in SHARD_SWEEP {
        let r = run(shards, rounds, scale);
        println!(
            "shards={:<3} wall={:>8.1} ms  groups/s={:>9.0}  ops/s={:>9.0}  p50={:>5} µs  p99={:>6} µs  cross-shard={}",
            r.shards, r.wall_ms, r.groups_per_sec, r.ops_per_sec, r.p50_us, r.p99_us, r.cross_shard_groups
        );
        results.push(r);
    }

    // The shard sweep replays the identical workload: every configuration
    // must have applied the identical number of groups.
    for r in &results[1..] {
        assert_eq!(
            r.groups_applied, results[0].groups_applied,
            "shards={}: group count diverged from single-shard baseline",
            r.shards
        );
    }
    // Dispatch overhead must not regress: the best multi-shard run keeps
    // at least 90% of single-shard throughput (on multi-core hosts it
    // exceeds it; the floor tolerates single-core CI wobble).
    let single = results[0].groups_per_sec;
    let best_multi = results[1..]
        .iter()
        .map(|r| r.groups_per_sec)
        .fold(0.0f64, f64::max);
    if !smoke {
        assert!(
            best_multi >= single * 0.9,
            "multi-shard dispatch regressed: best {best_multi:.0} groups/s vs single-shard {single:.0}"
        );
    }

    let out = serde_json::json!({
        "bench": "scale_hub",
        "smoke": smoke,
        "clients": TENANTS * CLIENTS_PER_TENANT,
        "tenants": TENANTS,
        "rounds": rounds,
        "trace_scale": json_num(scale),
        "trace_mix": "append / random-write / word-save, cycled per tenant",
        "sweep": results.iter().map(|r| serde_json::json!({
            "shards": r.shards,
            "wall_ms": json_num(r.wall_ms),
            "groups_applied": r.groups_applied,
            "ops_replayed": r.ops_replayed,
            "groups_per_sec": json_num(r.groups_per_sec),
            "ops_per_sec": json_num(r.ops_per_sec),
            "apply_latency_p50_us": r.p50_us,
            "apply_latency_p90_us": r.p90_us,
            "apply_latency_p99_us": r.p99_us,
            "cross_shard_groups": r.cross_shard_groups,
            "max_queue_depth_after": r.max_queue_depth,
            "shard_files": r.shard_files,
        })).collect::<Vec<_>>(),
        "notes": "identical 1000-client multi-tenant workload per shard count; convergence of every tenant asserted before reporting; queue-depth gauges asserted zero after flush; latency percentiles from the hub_apply_latency_us obs histogram",
    });
    let name = if smoke {
        "BENCH_6.smoke.json"
    } else {
        "BENCH_6.json"
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{path}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("\nwrote {path}");
}
