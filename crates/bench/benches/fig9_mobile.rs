//! Figure 9: network traffic on mobile — Dropsync vs DeltaCFS.

use criterion::{criterion_group, criterion_main, Criterion};
use deltacfs_bench::experiments::{fig9, run_cell, EngineKind};
use deltacfs_bench::table::render_fig9;
use deltacfs_net::{LinkSpec, PlatformProfile};
use deltacfs_workloads::TraceConfig;

fn fig9_bench(c: &mut Criterion) {
    let rows = fig9(0.05);
    println!("\n{}", render_fig9(&rows));

    let mut group = c.benchmark_group("fig9_cells");
    group.sample_size(10);
    let cfg = TraceConfig::scaled(0.01);
    let mobile = PlatformProfile::mobile();
    group.bench_function("dropsync_append", |b| {
        b.iter(|| {
            run_cell(
                EngineKind::Dropsync,
                "append",
                cfg,
                &mobile,
                LinkSpec::mobile(),
            )
        })
    });
    group.bench_function("deltacfs_append_mobile", |b| {
        b.iter(|| {
            run_cell(
                EngineKind::DeltaCfs,
                "append",
                cfg,
                &mobile,
                LinkSpec::mobile(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fig9_bench);
criterion_main!(benches);
