//! Forward/download-direction streaming (BENCH_7).
//!
//! A transaction group a peer must receive — one large full-content
//! message plus a delta-compressed edit — goes down the link two ways:
//!
//! * **materialized** — the whole group's wire image is downloaded in
//!   one shot: the peer cannot apply anything until every byte landed,
//!   and the in-flight buffer tracks the group size;
//! * **streamed** — `pipeline::frame_group` slices the group into
//!   budget-bounded `ChunkFrame`s, each downloaded with
//!   `Link::download_part` (pure bandwidth occupancy) and reassembled
//!   by the peer-side `ChunkStager`; one `download_end_msg` closes the
//!   stream, exactly as `SyncHub` forwards groups to peers.
//!
//! Recorded into `BENCH_7.json`:
//!
//! * `max_inflight_bytes` — the largest single frame on the wire, the
//!   peer's staging-buffer granularity, bounded by the same
//!   `chunk_budget * pipeline_depth` cap CI smoke re-checks for the
//!   upload direction (BENCH_5);
//! * the in-flight reduction versus materializing the group (the full
//!   64 MiB workload must clear 8x);
//! * end-to-end download latency on the slow-link (mobile) profile for
//!   both paths — per-frame accounting must not inflate byte totals or
//!   lose more than integer-millisecond rounding per frame.
//!
//! Correctness is asserted before anything is timed: the streamed
//! frames must reassemble to exactly the original group, with
//! downloaded-byte accounting identical to the materialized image.
//!
//! Full mode writes `BENCH_7.json` at the repository root. Smoke mode
//! (`cargo bench -p deltacfs-bench --bench forward_streaming -- --test`,
//! or `DELTACFS_BENCH_SMOKE=1`) shrinks the file and writes
//! `BENCH_7.smoke.json` instead, leaving the committed numbers alone.

use deltacfs_core::pipeline::{self, ChunkStager, PipelineConfig};
use deltacfs_core::{ClientId, GroupId, Payload, UpdateMsg, UpdatePayload, Version};
use deltacfs_delta::{local, Cost, DeltaParams};
use deltacfs_net::{Link, LinkSpec, SimTime};

const MIB: usize = 1024 * 1024;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var("DELTACFS_BENCH_SMOKE").is_ok()
}

/// Deterministic pseudo-random fill (xorshift-multiply LCG).
fn fill_random(buf: &mut [u8], mut state: u64) {
    for b in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (state >> 33) as u8;
    }
}

fn ver(n: u64) -> Version {
    Version {
        client: ClientId(1),
        counter: n,
    }
}

fn json_num(v: f64) -> serde_json::Value {
    serde_json::to_value(&v).expect("finite float")
}

fn main() {
    let smoke = smoke_mode();
    let size = if smoke { 4 * MIB } else { 64 * MIB };
    let cfg = PipelineConfig {
        chunk_budget: if smoke { 64 * 1024 } else { 256 * 1024 },
        pipeline_depth: 4,
    };
    let link_spec = LinkSpec::mobile();
    let gid = GroupId {
        client: ClientId(1),
        seq: 9,
    };

    println!(
        "# forward_streaming (smoke={smoke}, file={} MiB, budget={} KiB, depth={})\n",
        size / MIB,
        cfg.chunk_budget / 1024,
        cfg.pipeline_depth
    );

    // The forwarded group: a big full-content file (a diverged peer's
    // materialized heal) plus a delta-compressed edit riding along.
    let mut full_body = vec![0u8; size];
    fill_random(&mut full_body, 0x9E3779B97F4A7C15);
    let mut small_old = vec![0u8; 256 * 1024];
    fill_random(&mut small_old, 0xC0FFEE);
    let mut small_new = small_old.clone();
    small_new[10_000..30_000].fill(0x5A);
    let delta = local::diff(&small_old, &small_new, &DeltaParams::new(), &mut Cost::new());
    let group = vec![
        UpdateMsg {
            path: "/big".into(),
            base: None,
            version: Some(ver(2)),
            payload: UpdatePayload::Full(Payload::from(full_body)),
            txn: Some(9),
            group: Some(gid),
        },
        UpdateMsg {
            path: "/small".into(),
            base: Some(ver(1)),
            version: Some(ver(3)),
            payload: UpdatePayload::Delta {
                base_path: "/small".into(),
                delta,
            },
            txn: Some(9),
            group: Some(gid),
        },
    ];
    let wire_bytes: u64 = group.iter().map(UpdateMsg::wire_size).sum();

    // --- materialized reference: the whole group in one download ---------
    let mat_done = {
        let mut link = Link::new(link_spec);
        let done = link.download(wire_bytes, SimTime::ZERO);
        assert_eq!(link.stats().bytes_down, wire_bytes);
        done
    };

    // --- streamed: frame → download_part per chunk → stage → commit ------
    let mut link = Link::new(link_spec);
    let mut stager = ChunkStager::new();
    let mut committed = None;
    let mut frames = 0u64;
    let mut accounted = 0u64;
    let mut max_inflight = 0u64;
    pipeline::frame_group(&group, cfg.chunk_budget, |frame| {
        frames += 1;
        accounted += frame.accounted;
        max_inflight = max_inflight.max(frame.byte_len());
        link.download_part(frame.accounted, SimTime::ZERO);
        if let Some(msgs) = stager.accept(&frame).expect("in-order stream stages") {
            committed = Some(msgs);
        }
    });
    let st_done = link.download_end_msg(SimTime::ZERO);
    assert_eq!(
        committed.as_deref(),
        Some(&group[..]),
        "streamed frames must reassemble to the original group"
    );
    assert_eq!(stager.staged_groups(), 0, "commit must clear the stage");
    assert_eq!(
        accounted, wire_bytes,
        "per-frame accounting must sum to the materialized wire size"
    );
    assert_eq!(
        link.stats().bytes_down,
        wire_bytes,
        "streamed download accounting must equal the one-shot image"
    );

    // Peak in-flight bytes are a configuration constant, not a function
    // of the group size (the back-pressure contract CI smoke re-checks).
    let cap = (cfg.chunk_budget * cfg.pipeline_depth) as u64;
    assert!(
        max_inflight <= cap,
        "max_inflight {max_inflight} exceeds chunk_budget * pipeline_depth = {cap}"
    );
    let reduction = wire_bytes as f64 / max_inflight as f64;
    // Per-part transfer time rounds up to whole milliseconds, so the
    // streamed path may trail the one-shot by at most one ms per frame.
    assert!(
        st_done.as_millis() <= mat_done.as_millis() + frames,
        "streamed download lost more than rounding: {} ms vs {} ms over {frames} frames",
        st_done.as_millis(),
        mat_done.as_millis()
    );
    if !smoke {
        assert!(
            reduction >= 8.0,
            "in-flight reduction {reduction:.1}x below the 8x floor"
        );
    }

    println!("group wire bytes      {wire_bytes:>12}");
    println!("max in-flight bytes   {max_inflight:>12}");
    println!("in-flight reduction   {reduction:>11.1}x");
    println!("frames                {frames:>12}");
    println!("e2e materialized      {:>10} ms", mat_done.as_millis());
    println!("e2e streamed          {:>10} ms", st_done.as_millis());

    let out = serde_json::json!({
        "bench": "forward_streaming",
        "smoke": smoke,
        "file_bytes": size,
        "chunk_budget": cfg.chunk_budget,
        "pipeline_depth": cfg.pipeline_depth,
        "group_wire_bytes": wire_bytes,
        "max_inflight_bytes": max_inflight,
        "inflight_reduction_x": json_num(reduction),
        "frames": frames,
        "e2e_materialized_ms": mat_done.as_millis(),
        "e2e_streamed_ms": st_done.as_millis(),
        "link": "mobile (1 MiB/s up, 80 ms latency)",
        "notes": "same group both paths; streamed frames reassembled by ChunkStager and asserted byte-identical in accounting and committed content; e2e times are simulated link time",
    });
    let name = if smoke {
        "BENCH_7.smoke.json"
    } else {
        "BENCH_7.json"
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let path = format!("{path}{name}");
    std::fs::write(&path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .expect("write bench json");
    println!("\nwrote {path}");
}
