//! Machine-checkable reproduction claims.
//!
//! `repro check` evaluates the paper's qualitative claims — the shapes
//! that must survive reproduction — against freshly measured results and
//! reports each as pass/fail. This is the contract EXPERIMENTS.md
//! documents, executable.

use crate::experiments::{self, CellResult, EngineKind};

/// One evaluated claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Which paper artifact the claim comes from.
    pub source: &'static str,
    /// The claim, in words.
    pub statement: &'static str,
    /// Whether the measurement supports it.
    pub holds: bool,
    /// The measured numbers behind the verdict.
    pub evidence: String,
}

fn cell<'a>(
    rows: &'a [CellResult],
    engine: EngineKind,
    trace: &str,
    platform: &str,
) -> &'a CellResult {
    rows.iter()
        .find(|r| r.engine == engine && r.trace == trace && r.platform == platform)
        .expect("cell present")
}

/// Runs the evaluation at `scale` and checks every claim.
pub fn check(scale: f64) -> Vec<Claim> {
    let mut claims = Vec::new();
    let t2 = experiments::table2(scale);
    let f8 = experiments::fig8(scale);
    let f9 = experiments::fig9(scale);
    let t4 = experiments::table4();

    // --- Table II -------------------------------------------------------
    for trace in ["append", "random", "wechat"] {
        let dropbox = cell(&t2, EngineKind::Dropbox, trace, "pc")
            .client_ticks
            .unwrap();
        let seafile = cell(&t2, EngineKind::Seafile, trace, "pc")
            .client_ticks
            .unwrap();
        let deltacfs = cell(&t2, EngineKind::DeltaCfs, trace, "pc")
            .client_ticks
            .unwrap();
        claims.push(Claim {
            source: "Table II",
            statement: match trace {
                "append" => "append: client CPU DeltaCFS << Seafile << Dropbox",
                "random" => "random: client CPU DeltaCFS << Seafile << Dropbox",
                _ => "wechat: client CPU DeltaCFS << Seafile << Dropbox",
            },
            holds: deltacfs * 5 < seafile && seafile < dropbox,
            evidence: format!("DeltaCFS {deltacfs}, Seafile {seafile}, Dropbox {dropbox}"),
        });
    }
    {
        let dropbox = cell(&t2, EngineKind::Dropbox, "word", "pc")
            .client_ticks
            .unwrap();
        let deltacfs = cell(&t2, EngineKind::DeltaCfs, "word", "pc")
            .client_ticks
            .unwrap();
        claims.push(Claim {
            source: "Table II",
            statement: "word: DeltaCFS client CPU below Dropbox despite running delta encoding",
            holds: deltacfs < dropbox,
            evidence: format!("DeltaCFS {deltacfs}, Dropbox {dropbox}"),
        });
    }
    {
        let nfs = cell(&t2, EngineKind::Nfs, "word", "pc")
            .server_ticks
            .unwrap();
        let seafile = cell(&t2, EngineKind::Seafile, "word", "pc")
            .server_ticks
            .unwrap();
        claims.push(Claim {
            source: "Table II",
            statement: "word: NFS server CPU roughly twice Seafile's (network-stack cost)",
            holds: nfs > seafile && nfs < seafile * 8,
            evidence: format!("NFS {nfs}, Seafile {seafile}"),
        });
    }
    {
        let max_deltacfs_server = experiments::TRACES
            .iter()
            .map(|t| {
                cell(&t2, EngineKind::DeltaCfs, t, "pc")
                    .server_ticks
                    .unwrap()
            })
            .max()
            .unwrap();
        let min_seafile_client = experiments::TRACES
            .iter()
            .map(|t| {
                cell(&t2, EngineKind::Seafile, t, "pc")
                    .client_ticks
                    .unwrap()
            })
            .min()
            .unwrap();
        claims.push(Claim {
            source: "Table II",
            statement: "DeltaCFS server load is minimal (it only applies incremental data)",
            holds: max_deltacfs_server < min_seafile_client,
            evidence: format!(
                "max DeltaCFS server {max_deltacfs_server}, min Seafile client {min_seafile_client}"
            ),
        });
    }
    for trace in ["append", "random"] {
        let dropsync = cell(&t2, EngineKind::Dropsync, trace, "mobile")
            .client_ticks
            .unwrap();
        let deltacfs = cell(&t2, EngineKind::DeltaCfs, trace, "mobile")
            .client_ticks
            .unwrap();
        claims.push(Claim {
            source: "Table II (mobile)",
            statement: match trace {
                "append" => "append: Dropsync client CPU many times DeltaCFS's",
                _ => "random: Dropsync client CPU many times DeltaCFS's",
            },
            holds: dropsync > deltacfs * 10,
            evidence: format!("Dropsync {dropsync}, DeltaCFS {deltacfs}"),
        });
    }

    // --- Figure 8 --------------------------------------------------------
    for trace in ["append", "random"] {
        let seafile = cell(&f8, EngineKind::Seafile, trace, "pc").bytes_up;
        let deltacfs = cell(&f8, EngineKind::DeltaCfs, trace, "pc").bytes_up;
        let nfs = cell(&f8, EngineKind::Nfs, trace, "pc").bytes_up;
        claims.push(Claim {
            source: "Fig 8",
            statement: match trace {
                "append" => "append: Seafile uploads several times the others; NFS ≈ DeltaCFS",
                _ => "random: Seafile uploads several times the others; NFS ≈ DeltaCFS",
            },
            holds: seafile > 2 * deltacfs && (nfs as f64) < deltacfs as f64 * 1.2,
            evidence: format!("Seafile {seafile}, NFS {nfs}, DeltaCFS {deltacfs}"),
        });
    }
    {
        let nfs = cell(&f8, EngineKind::Nfs, "word", "pc");
        let deltacfs = cell(&f8, EngineKind::DeltaCfs, "word", "pc");
        claims.push(Claim {
            source: "Fig 8c",
            statement: "word: NFS re-downloads whole files after rename-over",
            holds: nfs.bytes_down * 3 > nfs.bytes_up,
            evidence: format!("NFS up {}, down {}", nfs.bytes_up, nfs.bytes_down),
        });
        claims.push(Claim {
            source: "Fig 8c",
            statement: "word: DeltaCFS uploads the least and downloads ~nothing",
            holds: deltacfs.bytes_up < nfs.bytes_up
                && deltacfs.bytes_up < cell(&f8, EngineKind::Dropbox, "word", "pc").bytes_up
                && deltacfs.bytes_down < deltacfs.bytes_up / 10 + 4096,
            evidence: format!(
                "DeltaCFS up {}, down {}",
                deltacfs.bytes_up, deltacfs.bytes_down
            ),
        });
    }
    {
        let deltacfs = cell(&f8, EngineKind::DeltaCfs, "wechat", "pc").bytes_up;
        let nfs = cell(&f8, EngineKind::Nfs, "wechat", "pc").bytes_up;
        let dropbox = cell(&f8, EngineKind::Dropbox, "wechat", "pc").bytes_up;
        let seafile = cell(&f8, EngineKind::Seafile, "wechat", "pc").bytes_up;
        claims.push(Claim {
            source: "Fig 8d",
            statement: "wechat: DeltaCFS ≈ NFS; Seafile worst; Dropbox lowest (dedup+compression)",
            holds: (deltacfs as f64 - nfs as f64).abs() < nfs as f64 * 0.2
                && seafile > 3 * deltacfs
                && dropbox < deltacfs,
            evidence: format!(
                "DeltaCFS {deltacfs}, NFS {nfs}, Dropbox {dropbox}, Seafile {seafile}"
            ),
        });
    }

    // --- Figure 9 --------------------------------------------------------
    {
        let worst_factor = experiments::TRACES
            .iter()
            .map(|t| {
                let dropsync = cell(&f9, EngineKind::Dropsync, t, "mobile").bytes_up as f64;
                let deltacfs = cell(&f9, EngineKind::DeltaCfs, t, "mobile").bytes_up as f64;
                dropsync / deltacfs
            })
            .fold(f64::INFINITY, f64::min);
        claims.push(Claim {
            source: "Fig 9",
            statement: "mobile: Dropsync uploads several times DeltaCFS on every trace",
            holds: worst_factor > 2.0,
            evidence: format!("smallest Dropsync/DeltaCFS upload factor {worst_factor:.1}"),
        });
    }

    // --- Table IV ---------------------------------------------------------
    {
        let deltacfs = t4.iter().find(|r| r.service == "DeltaCFS").unwrap();
        let dropbox = t4.iter().find(|r| r.service == "Dropbox").unwrap();
        claims.push(Claim {
            source: "Table IV",
            statement: "only DeltaCFS detects corruption/inconsistency and preserves causal order",
            holds: deltacfs.corrupted == "detect"
                && deltacfs.inconsistent == "detect"
                && deltacfs.causal == "Y"
                && dropbox.corrupted == "upload"
                && dropbox.causal == "N",
            evidence: format!(
                "DeltaCFS {}/{}/{}; Dropbox {}/{}/{}",
                deltacfs.corrupted,
                deltacfs.inconsistent,
                deltacfs.causal,
                dropbox.corrupted,
                dropbox.inconsistent,
                dropbox.causal
            ),
        });
    }
    claims
}

/// Renders the claim list; returns `false` if any claim failed.
pub fn render(claims: &[Claim]) -> (String, bool) {
    let mut out = String::new();
    let mut all_ok = true;
    for c in claims {
        let mark = if c.holds { "PASS" } else { "FAIL" };
        all_ok &= c.holds;
        out.push_str(&format!(
            "[{mark}] {:<12} {}\n        {}\n",
            c.source, c.statement, c.evidence
        ));
    }
    let passed = claims.iter().filter(|c| c.holds).count();
    out.push_str(&format!("\n{passed}/{} claims hold\n", claims.len()));
    (out, all_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_hold_at_small_scale() {
        // 0.05 is the smallest scale at which chunk-granularity effects
        // (Seafile's upload blow-up) remain visible.
        let claims = check(0.05);
        let (report, all_ok) = render(&claims);
        assert!(all_ok, "failing claims:\n{report}");
        assert!(claims.len() >= 12);
    }
}
