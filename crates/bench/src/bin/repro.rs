//! Regenerates every table and figure of the DeltaCFS paper.
//!
//! ```text
//! cargo run -p deltacfs-bench --release --bin repro -- all
//! cargo run -p deltacfs-bench --release --bin repro -- table2 --scale 0.25
//! cargo run -p deltacfs-bench --release --bin repro -- fig8 --json out.json
//! ```
//!
//! `--scale` scales the traces (1.0 = the paper's exact sizes; the default
//! 0.25 preserves every ratio while running in minutes on one core).

use deltacfs_bench::experiments;
use deltacfs_bench::table;
use deltacfs_workloads::filebench::FilebenchConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = 0.25f64;
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a number"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--json expects a path")),
                );
            }
            "--metrics" => {
                i += 1;
                metrics_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--metrics expects a path")),
                );
            }
            "--profile" => {
                i += 1;
                profile_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--profile expects a trace output path")),
                );
            }
            other if !other.starts_with('-') => which.push(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let all = which.iter().any(|w| w == "all");
    let wants = |name: &str| (all && name != "check") || which.iter().any(|w| w == name);

    let mut json = serde_json::Map::new();
    println!("# DeltaCFS evaluation reproduction (scale {scale})\n");

    if wants("fig1") {
        let rows = experiments::fig1(scale);
        println!("{}", table::render_fig1(&rows));
        json.insert("fig1".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("fig2") {
        let result = experiments::fig2(scale);
        println!("{}", table::render_fig2(&result));
        json.insert("fig2".into(), serde_json::to_value(&result).unwrap());
    }
    if wants("table2") {
        let rows = experiments::table2(scale);
        println!("{}", table::render_table2(&rows));
        json.insert("table2".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("fig8") {
        let rows = experiments::fig8(scale);
        println!("{}", table::render_fig8(&rows));
        json.insert("fig8".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("fig9") {
        let rows = experiments::fig9(scale);
        println!("{}", table::render_fig9(&rows));
        json.insert("fig9".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("table3") {
        let cfg = FilebenchConfig::default();
        let rows = experiments::table3(&cfg, 3);
        println!("{}", table::render_table3(&rows));
        json.insert("table3".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("check") {
        let claims = deltacfs_bench::claims::check(scale);
        let (report, all_ok) = deltacfs_bench::claims::render(&claims);
        println!("{report}");
        json.insert("check".into(), serde_json::json!({ "passed": all_ok }));
        if !all_ok {
            std::process::exit(1);
        }
    }
    if wants("table4") {
        let rows = experiments::table4();
        println!("{}", table::render_table4(&rows));
        json.insert("table4".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("table5") {
        let rows = experiments::table5(&[1, 2, 3, 4]);
        println!("{}", table::render_table5(&rows));
        json.insert("table5".into(), serde_json::to_value(&rows).unwrap());
    }
    if wants("metrics") || metrics_path.is_some() {
        let snap = experiments::metrics_snapshot();
        println!("## Observability snapshot (pinned-seed faulty two-writer run)\n");
        println!("{}", snap.to_prometheus());
        let value: serde_json::Value = serde_json::from_str(&snap.to_json())
            .unwrap_or_else(|e| die(&format!("metrics snapshot is not valid JSON: {e}")));
        json.insert("metrics".into(), value);
        if let Some(path) = &metrics_path {
            std::fs::write(path, snap.to_prometheus())
                .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            println!("(prometheus metrics written to {path})");
        }
    }
    if wants("profile") || profile_path.is_some() {
        let run = experiments::profile_run();
        println!("## Sync profile (pinned-seed faulty two-writer run)\n");
        println!("{}", run.report);
        let trace: serde_json::Value = serde_json::from_str(&run.chrome_trace)
            .unwrap_or_else(|e| die(&format!("chrome trace is not valid JSON: {e}")));
        let metrics: serde_json::Value = serde_json::from_str(&run.snapshot.to_json())
            .unwrap_or_else(|e| die(&format!("profiled snapshot is not valid JSON: {e}")));
        json.insert(
            "profile".into(),
            serde_json::json!({ "report": run.report, "metrics": metrics }),
        );
        if let Some(path) = &profile_path {
            std::fs::write(path, &run.chrome_trace)
                .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            println!(
                "(chrome trace with {} events written to {path} — open in Perfetto)",
                match &trace {
                    serde_json::Value::Object(map) => match map.get("traceEvents") {
                        Some(serde_json::Value::Array(events)) => events.len(),
                        _ => 0,
                    },
                    _ => 0,
                }
            );
        }
    }

    if let Some(path) = json_path {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&serde_json::Value::Object(json)).unwrap(),
        )
        .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("(json written to {path})");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro [all|fig1|fig2|table2|fig8|fig9|table3|table4|table5|metrics|profile]... \
         [--scale F] [--json PATH] [--metrics PATH] [--profile TRACE_PATH]"
    );
    std::process::exit(2);
}
