//! # deltacfs-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! DeltaCFS paper's evaluation (§IV). Each experiment is a plain function
//! returning structured rows, shared by:
//!
//! * the `repro` binary (`cargo run -p deltacfs-bench --release --bin
//!   repro -- all`) which prints paper-style tables, and
//! * the Criterion benches (`cargo bench`) which measure the underlying
//!   kernels and print the same rows.
//!
//! Absolute numbers differ from the paper (different hardware, simulated
//! substrate); the claims that reproduce are the *shapes*: who wins, by
//! roughly what factor, and where the crossovers fall. `EXPERIMENTS.md`
//! at the repository root records paper-vs-measured for every row.

#![warn(missing_docs)]

pub mod claims;
pub mod experiments;
pub mod table;

pub use experiments::{
    fig1, fig2, fig8, fig9, table2, table3, table4, table5, CellResult, EngineKind,
    FaultCellResult, Fig2Result, ReliabilityRow, Table3Row,
};
