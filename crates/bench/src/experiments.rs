//! The experiments, one function per paper table/figure.

use deltacfs_baselines::{DropboxConfig, DropboxEngine, DropsyncEngine, NfsEngine, SeafileEngine};
use deltacfs_core::{
    DeltaCfsConfig, DeltaCfsSystem, HubConfig, InlineInterceptor, InlineMode, SyncEngine, SyncHub,
};
use deltacfs_net::{CrashPhase, FaultSpec, LinkSpec, PlatformProfile, SimClock};
use deltacfs_vfs::Vfs;
use deltacfs_workloads::filebench::{self, FilebenchConfig, Personality};
use deltacfs_workloads::{
    replay, AppendTrace, RandomWriteTrace, Trace, TraceConfig, WeChatTrace, WordTrace,
};
use serde::Serialize;

/// Which sync engine a cell was measured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EngineKind {
    /// The Dropbox-like baseline (rsync in 4 MB dedup blocks).
    Dropbox,
    /// The Seafile-like baseline (1 MB CDC chunks).
    Seafile,
    /// The NFSv4-like baseline (write-through RPC).
    Nfs,
    /// DeltaCFS (this paper).
    DeltaCfs,
    /// The mobile Dropsync baseline (full-file uploads).
    Dropsync,
    /// Whole-file rsync without dedup confinement or compression — the
    /// "plain rsync" reference the paper quotes for the WeChat trace.
    PlainRsync,
}

impl EngineKind {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Dropbox => "Dropbox",
            EngineKind::Seafile => "Seafile",
            EngineKind::Nfs => "NFSv4",
            EngineKind::DeltaCfs => "DeltaCFS",
            EngineKind::Dropsync => "Dropsync",
            EngineKind::PlainRsync => "rsync(ref)",
        }
    }
}

/// One engine × trace measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Engine measured.
    pub engine: EngineKind,
    /// Trace name ("append", "random", "word", "wechat").
    pub trace: &'static str,
    /// Platform profile name ("pc" / "mobile").
    pub platform: &'static str,
    /// Client CPU ticks (paper Table II); `None` renders as `-`.
    pub client_ticks: Option<u64>,
    /// Server CPU ticks; `None` renders as `-` (opaque server).
    pub server_ticks: Option<u64>,
    /// Bytes uploaded client → cloud.
    pub bytes_up: u64,
    /// Bytes downloaded cloud → client.
    pub bytes_down: u64,
    /// Bytes the engine itself read back from the file system (IO
    /// amplification, §II-A).
    pub engine_read: u64,
    /// Application-level update volume (TUE denominator).
    pub update_bytes: u64,
}

impl CellResult {
    /// Traffic Usage Efficiency (total traffic / update size), Fig. 2.
    pub fn tue(&self) -> f64 {
        if self.update_bytes == 0 {
            0.0
        } else {
            (self.bytes_up + self.bytes_down) as f64 / self.update_bytes as f64
        }
    }
}

/// The four standard traces of §IV-A by name.
fn standard_trace(name: &str, cfg: TraceConfig) -> Box<dyn Trace> {
    match name {
        "append" => Box::new(AppendTrace::new(cfg)),
        "random" => Box::new(RandomWriteTrace::new(cfg)),
        "word" => Box::new(WordTrace::new(cfg)),
        "wechat" => Box::new(WeChatTrace::new(cfg)),
        other => panic!("unknown trace {other}"),
    }
}

fn make_engine(
    kind: EngineKind,
    clock: SimClock,
    link: LinkSpec,
    scale: f64,
) -> Box<dyn SyncEngine> {
    match kind {
        EngineKind::Dropbox => Box::new(DropboxEngine::new(
            DropboxConfig::scaled(scale),
            clock,
            link,
        )),
        EngineKind::PlainRsync => Box::new(DropboxEngine::new(
            DropboxConfig {
                // Whole-file rsync: one "dedup block" spanning everything,
                // no compression — the reference computation the paper
                // ran on the WeChat trace (§IV-C1, ~30 MB).
                dedup_block: usize::MAX / 2,
                compress: false,
                ..DropboxConfig::default()
            },
            clock,
            link,
        )),
        EngineKind::Seafile => Box::new(SeafileEngine::new(
            deltacfs_baselines::SeafileConfig::scaled(scale),
            clock,
            link,
        )),
        EngineKind::Nfs => Box::new(NfsEngine::new(clock, link)),
        EngineKind::DeltaCfs => Box::new(DeltaCfsSystem::new(DeltaCfsConfig::new(), clock, link)),
        EngineKind::Dropsync => Box::new(DropsyncEngine::new(
            deltacfs_baselines::DropsyncConfig::default(),
            clock,
            link,
        )),
    }
}

/// Replays `trace_name` through `kind` and converts work into ticks with
/// `profile`. This is the primitive every table/figure builds on.
pub fn run_cell(
    kind: EngineKind,
    trace_name: &'static str,
    cfg: TraceConfig,
    profile: &PlatformProfile,
    link: LinkSpec,
) -> CellResult {
    let clock = SimClock::new();
    let mut engine = make_engine(kind, clock.clone(), link, cfg.scale);
    let mut fs = Vfs::new();
    let trace = standard_trace(trace_name, cfg);
    let report = replay(trace.as_ref(), &mut fs, engine.as_mut(), &clock, 100);
    let er = engine.report();
    let net = er.traffic.total_bytes();
    let client_ticks = match kind {
        // NFS client work happens in kernel callbacks; the paper prints
        // `-` for it.
        EngineKind::Nfs => None,
        _ => Some(profile.ticks(&er.client_cost, net)),
    };
    let server_ticks = er.server_cost.as_ref().map(|c| profile.ticks(c, net));
    CellResult {
        engine: kind,
        trace: trace_name,
        platform: profile.name,
        client_ticks,
        server_ticks,
        bytes_up: er.traffic.bytes_up,
        bytes_down: er.traffic.bytes_down,
        engine_read: er.client_cost.bytes_engine_read,
        update_bytes: report.update_bytes,
    }
}

/// The four standard trace names, in the paper's column order.
pub const TRACES: [&str; 4] = ["append", "random", "word", "wechat"];

/// Table II: CPU ticks of every engine on every trace, PC rows then
/// mobile rows.
pub fn table2(scale: f64) -> Vec<CellResult> {
    let cfg = TraceConfig::scaled(scale);
    let pc = PlatformProfile::pc();
    let mobile = PlatformProfile::mobile();
    let mut rows = Vec::new();
    for kind in [
        EngineKind::Dropbox,
        EngineKind::Seafile,
        EngineKind::Nfs,
        EngineKind::DeltaCfs,
    ] {
        for trace in TRACES {
            rows.push(run_cell(kind, trace, cfg, &pc, LinkSpec::pc()));
        }
    }
    for kind in [EngineKind::Dropsync, EngineKind::DeltaCfs] {
        for trace in TRACES {
            rows.push(run_cell(kind, trace, cfg, &mobile, LinkSpec::mobile()));
        }
    }
    rows
}

/// Figure 8: network transmission on PC — upload and download per engine
/// per trace, plus the whole-file-rsync reference on the WeChat trace.
pub fn fig8(scale: f64) -> Vec<CellResult> {
    let cfg = TraceConfig::scaled(scale);
    let pc = PlatformProfile::pc();
    let mut rows = Vec::new();
    for trace in TRACES {
        for kind in [
            EngineKind::Dropbox,
            EngineKind::Seafile,
            EngineKind::Nfs,
            EngineKind::DeltaCfs,
        ] {
            rows.push(run_cell(kind, trace, cfg, &pc, LinkSpec::pc()));
        }
    }
    rows.push(run_cell(
        EngineKind::PlainRsync,
        "wechat",
        cfg,
        &pc,
        LinkSpec::pc(),
    ));
    rows
}

/// Figure 9: network traffic on mobile — Dropsync vs DeltaCFS.
pub fn fig9(scale: f64) -> Vec<CellResult> {
    let cfg = TraceConfig::scaled(scale);
    let mobile = PlatformProfile::mobile();
    let mut rows = Vec::new();
    for trace in TRACES {
        for kind in [EngineKind::Dropsync, EngineKind::DeltaCfs] {
            rows.push(run_cell(kind, trace, cfg, &mobile, LinkSpec::mobile()));
        }
    }
    rows
}

/// Figure 1: the motivation experiment — client CPU and upload volume of
/// Dropbox and Seafile on a 12 MB Word document (23 saves) and a 130 MB
/// SQLite chat database (4 modifications, 688 KB changed).
pub fn fig1(scale: f64) -> Vec<CellResult> {
    let cfg = TraceConfig::scaled(scale);
    let pc = PlatformProfile::pc();
    let mut rows = Vec::new();
    for kind in [EngineKind::Dropbox, EngineKind::Seafile] {
        for (name, trace) in [
            (
                "word",
                Box::new(WordTrace::motivation(cfg)) as Box<dyn Trace>,
            ),
            (
                "wechat",
                Box::new(WeChatTrace::motivation(cfg)) as Box<dyn Trace>,
            ),
        ] {
            let clock = SimClock::new();
            let mut engine = make_engine(kind, clock.clone(), LinkSpec::pc(), scale);
            let mut fs = Vfs::new();
            let report = replay(trace.as_ref(), &mut fs, engine.as_mut(), &clock, 100);
            let er = engine.report();
            let net = er.traffic.total_bytes();
            rows.push(CellResult {
                engine: kind,
                trace: name,
                platform: "pc",
                client_ticks: Some(pc.ticks(&er.client_cost, net)),
                server_ticks: er.server_cost.as_ref().map(|c| pc.ticks(c, net)),
                bytes_up: er.traffic.bytes_up,
                bytes_down: er.traffic.bytes_down,
                engine_read: er.client_cost.bytes_engine_read,
                update_bytes: report.update_bytes,
            });
        }
    }
    rows
}

/// Figure 2 output: Dropsync's traffic-usage efficiency on the WeChat
/// trace over a mobile link.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Result {
    /// Total sync traffic / update size (≥ 1; the paper measures tens).
    pub tue: f64,
    /// Client ticks per simulated second — the sustained CPU load that
    /// keeps the device in high-power mode.
    pub ticks_per_sec: f64,
    /// Completed full-file uploads.
    pub uploads: u64,
    /// The update volume the application actually produced.
    pub update_bytes: u64,
}

/// Figure 2: syncing WeChat's data through Dropsync on a phone.
pub fn fig2(scale: f64) -> Fig2Result {
    let cfg = TraceConfig::scaled(scale);
    let clock = SimClock::new();
    let mut engine = DropsyncEngine::with_defaults(clock.clone());
    let mut fs = Vfs::new();
    let trace = WeChatTrace::new(cfg);
    let report = replay(&trace, &mut fs, &mut engine, &clock, 100);
    // Exclude the unavoidable initial upload from the TUE numerator and
    // denominator, as the paper's Fig. 2 observes steady-state sync.
    let er = engine.report();
    let initial = fs.peek_all("/chat.db").map(|c| c.len() as u64).unwrap_or(0);
    let steady_up = er.traffic.bytes_up.saturating_sub(initial);
    let steady_update = report.update_bytes.saturating_sub(initial);
    let mobile = PlatformProfile::mobile();
    let ticks = mobile.ticks(&er.client_cost, er.traffic.total_bytes());
    Fig2Result {
        tue: if steady_update == 0 {
            0.0
        } else {
            (steady_up + er.traffic.bytes_down) as f64 / steady_update as f64
        },
        ticks_per_sec: ticks as f64 / (report.duration_ms as f64 / 1000.0),
        uploads: engine.upload_count(),
        update_bytes: steady_update,
    }
}

/// One row of Table III.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Personality name.
    pub workload: &'static str,
    /// Native throughput, MB/s.
    pub native: f64,
    /// Loopback-FUSE throughput, MB/s.
    pub fuse: f64,
    /// DeltaCFS throughput, MB/s.
    pub deltacfs: f64,
    /// DeltaCFS-with-checksums throughput, MB/s.
    pub deltacfs_c: f64,
}

/// Table III: local IO throughput under inline interception. Each cell is
/// the best of `repeats` runs (real wall-clock measurement).
pub fn table3(cfg: &FilebenchConfig, repeats: usize) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for personality in Personality::all() {
        let measure = |mode: Option<InlineMode>| -> f64 {
            let mut best = 0.0f64;
            for _ in 0..repeats.max(1) {
                let mut fs = Vfs::new();
                if let Some(mode) = mode {
                    // A modest queue cap makes the Fileserver/Varmail
                    // write streams hit the drain path, as in the paper.
                    fs.set_observer(Box::new(InlineInterceptor::with_capacity(
                        mode,
                        8 * 1024 * 1024,
                    )));
                }
                let result = filebench::run(personality, cfg, &mut fs);
                best = best.max(result.mb_per_sec());
            }
            best
        };
        rows.push(Table3Row {
            workload: personality.name(),
            native: measure(None),
            fuse: measure(Some(InlineMode::FusePassthrough)),
            deltacfs: measure(Some(InlineMode::DeltaCfs)),
            deltacfs_c: measure(Some(InlineMode::DeltaCfsChecksum)),
        });
    }
    rows
}

/// One row of Table IV.
#[derive(Debug, Clone, Serialize)]
pub struct ReliabilityRow {
    /// Service name.
    pub service: &'static str,
    /// What happens to silently corrupted data ("upload" / "detect").
    pub corrupted: &'static str,
    /// What happens to crash-inconsistent data ("upload/omit" / "detect").
    pub inconsistent: &'static str,
    /// Whether causal upload order is preserved ("Y" / "N").
    pub causal: &'static str,
}

/// Table IV: reliability tests — corruption propagation, crash
/// inconsistency, and causal upload ordering.
pub fn table4() -> Vec<ReliabilityRow> {
    vec![
        ReliabilityRow {
            service: "Dropbox",
            corrupted: corruption_verdict_baseline(EngineKind::Dropbox),
            inconsistent: "upload/omit",
            causal: causal_verdict_baseline(),
        },
        ReliabilityRow {
            service: "Seafile",
            corrupted: corruption_verdict_baseline(EngineKind::Seafile),
            inconsistent: "upload/omit",
            causal: causal_verdict_baseline(),
        },
        ReliabilityRow {
            service: "DeltaCFS",
            corrupted: corruption_verdict_deltacfs(),
            inconsistent: inconsistency_verdict_deltacfs(),
            causal: causal_verdict_deltacfs(),
        },
    ]
}

/// Baselines scan the file as-is; a corrupted block is indistinguishable
/// from a user edit and is uploaded.
fn corruption_verdict_baseline(kind: EngineKind) -> &'static str {
    let clock = SimClock::new();
    let mut engine = make_engine(kind, clock.clone(), LinkSpec::pc(), 1.0);
    let mut fs = Vfs::new();
    fs.enable_event_log();
    fs.create("/f").unwrap();
    fs.write("/f", 0, &vec![0xAAu8; 64 * 1024]).unwrap();
    for e in fs.drain_events() {
        engine.on_event(&e, &fs);
    }
    clock.advance(1_000);
    engine.tick(&fs);
    let before = engine.report().traffic.bytes_up;

    fs.inject_bit_flip("/f", 4_000, 3).unwrap();
    fs.write("/f", 4_090, b"z").unwrap();
    for e in fs.drain_events() {
        engine.on_event(&e, &fs);
    }
    clock.advance(1_000);
    engine.tick(&fs);
    let uploaded = engine.report().traffic.bytes_up > before;
    if uploaded {
        "upload"
    } else {
        "omit"
    }
}

fn corruption_verdict_deltacfs() -> &'static str {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    fs.create("/f").unwrap();
    fs.write("/f", 0, &vec![0xAAu8; 64 * 1024]).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);
    let clean = sys.server().file("/f").map(<[u8]>::to_vec);

    fs.inject_bit_flip("/f", 4_000, 3).unwrap();
    fs.write("/f", 4_090, b"z").unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);
    let detected = !sys.client().issues().is_empty();
    let server_unchanged = sys.server().file("/f").map(<[u8]>::to_vec) == clean;
    if detected && server_unchanged {
        "detect"
    } else {
        "upload"
    }
}

fn inconsistency_verdict_deltacfs() -> &'static str {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    fs.create("/f").unwrap();
    fs.write("/f", 0, &vec![0x55u8; 64 * 1024]).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(4_000);
    sys.tick(&fs);
    // Power cut during a write: data blocks changed, nothing intercepted.
    fs.inject_torn_write("/f", 12_288, &vec![9u8; 4096])
        .unwrap();
    let issues = sys
        .client_mut()
        .crash_recovery_scan(&["/f".to_string()], &fs);
    if issues.is_empty() {
        "upload/omit"
    } else {
        "detect"
    }
}

fn causal_verdict_deltacfs() -> &'static str {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    // A large file is updated *before* a small one.
    fs.create("/big").unwrap();
    fs.write("/big", 0, &vec![1u8; 4 * 1024 * 1024]).unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(500);
    fs.create("/small").unwrap();
    fs.write("/small", 0, b"tiny").unwrap();
    for e in fs.drain_events() {
        sys.on_event(&e, &fs);
    }
    clock.advance(10_000);
    sys.tick(&fs);
    sys.finish(&fs);
    let order = sys.server().apply_order();
    let big_pos = order.iter().position(|p| p == "/big");
    let small_pos = order.iter().position(|p| p == "/small");
    match (big_pos, small_pos) {
        (Some(b), Some(s)) if b < s => "Y",
        _ => "N",
    }
}

/// Baselines run one independent sync pipeline per file; completion time
/// is proportional to file size (scan + hash + transfer), so a small file
/// updated *after* a large one still reaches the cloud first.
fn causal_verdict_baseline() -> &'static str {
    let big_size = 4 * 1024 * 1024u64;
    let small_size = 4u64;
    let big_started = 0u64;
    let small_started = 500u64;
    // Completion = start + work ∝ size (hashing + upload).
    let big_done = big_started + big_size / 1024;
    let small_done = small_started + small_size / 1024;
    if big_done <= small_done {
        "Y"
    } else {
        "N"
    }
}

/// One cell of the fault-injection reliability matrix ("Table V" —
/// beyond the paper's Table IV: the same two-client workload pushed
/// through seeded network faults and server crashes).
#[derive(Debug, Clone, Serialize)]
pub struct FaultCellResult {
    /// Fault scenario label.
    pub scenario: &'static str,
    /// Seed reproducing the cell's fault schedule.
    pub seed: u64,
    /// Whether clients and server converged byte-identically.
    pub converged: bool,
    /// Courier retransmissions across both clients.
    pub retries: u64,
    /// Duplicate groups the server's idempotency index absorbed.
    pub duplicates: u64,
    /// Injected server crashes (both phases).
    pub server_crashes: u64,
    /// Total client→cloud bytes (retries included).
    pub bytes_up: u64,
    /// Groups abandoned after exhausting the retry budget (must be 0).
    pub gave_up: usize,
}

fn fault_cell(scenario: &'static str, spec: FaultSpec) -> FaultCellResult {
    let seed = spec.seed;
    let clock = SimClock::new();
    let mut hub = SyncHub::new(clock.clone());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.enable_faults(spec);

    let round = |hub: &mut SyncHub| {
        hub.pump();
        clock.advance(4_000);
        hub.pump();
    };
    hub.fs_mut(0).create("/a").unwrap();
    hub.fs_mut(0).write("/a", 0, &vec![1u8; 8_192]).unwrap();
    hub.fs_mut(1).create("/b").unwrap();
    hub.fs_mut(1).write("/b", 0, &vec![2u8; 4_096]).unwrap();
    round(&mut hub);
    hub.fs_mut(0).write("/a", 100, &[9u8; 512]).unwrap();
    hub.fs_mut(1).write("/b", 0, b"edited").unwrap();
    round(&mut hub);
    hub.fs_mut(0).create("/c").unwrap();
    hub.fs_mut(0).write("/c", 0, &vec![3u8; 1_024]).unwrap();
    round(&mut hub);

    let drained = hub.settle(600_000);
    let stats = hub.fault_stats().expect("faults are armed");
    let converged = drained
        && hub.server().paths().iter().all(|p| {
            (0..2).all(|i| hub.fs(i).peek_all(p).ok().as_deref() == hub.server().file(p).as_deref())
        });
    FaultCellResult {
        scenario,
        seed,
        converged,
        retries: hub.retries(0) + hub.retries(1),
        duplicates: hub.server().duplicates_ignored(),
        server_crashes: stats.crashes_before_apply + stats.crashes_after_apply,
        bytes_up: hub.traffic(0).bytes_up + hub.traffic(1).bytes_up,
        gave_up: hub.given_up(0) + hub.given_up(1),
    }
}

/// Table V: the fault scenario matrix — every scenario × every seed,
/// each cell a full two-client sync run under injected faults.
pub fn table5(seeds: &[u64]) -> Vec<FaultCellResult> {
    let mut rows = Vec::new();
    for &seed in seeds {
        rows.push(fault_cell("clean", FaultSpec::clean(seed)));
        rows.push(fault_cell(
            "lossy",
            FaultSpec::clean(seed).with_rates(0.3, 0.2, 0.0),
        ));
        rows.push(fault_cell(
            "dup+reorder",
            FaultSpec::clean(seed).with_rates(0.0, 0.0, 0.6).with_reorder(0.7),
        ));
        rows.push(fault_cell(
            "crash",
            FaultSpec::clean(seed)
                .with_crash(2, CrashPhase::BeforeApply)
                .with_crash(5, CrashPhase::AfterApply),
        ));
        rows.push(fault_cell(
            "disconnect",
            FaultSpec::clean(seed).with_disconnect(1, 0, 15_000),
        ));
        rows.push(fault_cell(
            "chaos",
            FaultSpec::clean(seed)
                .with_rates(0.25, 0.15, 0.3)
                .with_reorder(0.5)
                .with_crash(3, CrashPhase::AfterApply),
        ));
    }
    rows
}

/// Runs a pinned-seed faulty two-writer workload with the full
/// observability stack armed (tracing enabled, couriers feeding the
/// backoff histogram) and returns the unified metrics snapshot —
/// the `repro -- metrics` section, and a quick way to eyeball what the
/// registry exports.
///
/// Deterministic: same snapshot (byte-identical JSON and Prometheus
/// renderings) on every run.
pub fn metrics_snapshot() -> deltacfs_obs::Snapshot {
    faulty_word_save_run(HubConfig::new(), deltacfs_obs::Obs::with_tracing(8192)).export_metrics()
}

/// The pinned-seed faulty two-writer workload behind
/// [`metrics_snapshot`] and [`profile_run`]: a PC and a mobile client
/// under independent fault schedules, disjoint first-round writes, then
/// a Word-style transactional save on the mobile client so the relation
/// table triggers and the parallel delta encoder runs.
fn faulty_word_save_run(cfg: HubConfig, obs: deltacfs_obs::Obs) -> SyncHub {
    let seed = 7u64;
    let clock = SimClock::new();
    let mut hub = SyncHub::with_config(clock.clone(), cfg);
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::pc());
    hub.add_client(DeltaCfsConfig::new(), LinkSpec::mobile());
    hub.enable_observability(obs);
    hub.enable_fault_topology(vec![
        FaultSpec::clean(seed)
            .with_rates(0.25, 0.15, 0.25)
            .with_reorder(0.5),
        FaultSpec::clean(seed ^ 0xBEEF).with_rates(0.2, 0.2, 0.2),
    ]);

    hub.fs_mut(0).create("/a.txt").unwrap();
    hub.fs_mut(0).write("/a.txt", 0, b"alpha round one").unwrap();
    hub.fs_mut(1).create("/b.txt").unwrap();
    hub.fs_mut(1).write("/b.txt", 0, &vec![7u8; 20_000]).unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();

    // A Word-style transactional save so the relation table triggers and
    // the parallel delta encoder runs.
    let mut doc = hub.fs(1).peek_all("/b.txt").unwrap();
    doc[10_000] = 9;
    hub.fs_mut(1).rename("/b.txt", "/b.bak").unwrap();
    hub.pump();
    hub.fs_mut(1).create("/b.tmp").unwrap();
    hub.pump();
    hub.fs_mut(1).write("/b.tmp", 0, &doc).unwrap();
    hub.pump();
    hub.fs_mut(1).close_path("/b.tmp").unwrap();
    hub.pump();
    hub.fs_mut(1).rename("/b.tmp", "/b.txt").unwrap();
    hub.pump();
    hub.fs_mut(1).unlink("/b.bak").unwrap();
    hub.pump();
    clock.advance(4_000);
    hub.pump();
    hub.settle(600_000);
    hub
}

/// Output of the profiled pinned-seed run (the `repro --profile`
/// section): the critical-path text report, the Perfetto-loadable
/// Chrome trace-event JSON, and the unified metrics snapshot with the
/// profiler's `span_stage_ms` / lag gauges folded in.
pub struct ProfileRun {
    /// Per-group critical-path attribution plus SLO gauges, as text.
    pub report: String,
    /// Chrome trace-event JSON (open in Perfetto / `chrome://tracing`).
    pub chrome_trace: String,
    /// The unified metrics snapshot of the profiled run.
    pub snapshot: deltacfs_obs::Snapshot,
}

/// Runs the [`metrics_snapshot`] workload with causal span profiling
/// armed ([`HubConfig::with_profiling`] + [`deltacfs_obs::Obs::with_profiling`])
/// and returns the assembled profile. Deterministic: byte-identical
/// report and trace JSON on every run.
pub fn profile_run() -> ProfileRun {
    let hub = faulty_word_save_run(
        HubConfig::new().with_profiling(true),
        deltacfs_obs::Obs::with_profiling(8192),
    );
    let snapshot = hub.export_metrics();
    let profiler = hub.profiler();
    ProfileRun {
        report: profiler.text_report(),
        chrome_trace: profiler.chrome_trace(),
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: f64 = 0.01;

    #[test]
    fn table2_shapes_hold_on_pc() {
        let rows = table2(S);
        let get = |kind: EngineKind, trace: &str| -> &CellResult {
            rows.iter()
                .find(|r| r.engine == kind && r.trace == trace && r.platform == "pc")
                .unwrap()
        };
        for trace in ["append", "random", "wechat"] {
            let dropbox = get(EngineKind::Dropbox, trace).client_ticks.unwrap();
            let seafile = get(EngineKind::Seafile, trace).client_ticks.unwrap();
            let deltacfs = get(EngineKind::DeltaCfs, trace).client_ticks.unwrap();
            assert!(
                dropbox > seafile && seafile > deltacfs,
                "{trace}: dropbox {dropbox} seafile {seafile} deltacfs {deltacfs}"
            );
        }
        // Word trace: DeltaCFS still cheapest among the delta engines.
        let word_dropbox = get(EngineKind::Dropbox, "word").client_ticks.unwrap();
        let word_deltacfs = get(EngineKind::DeltaCfs, "word").client_ticks.unwrap();
        assert!(word_dropbox > word_deltacfs);
        // DeltaCFS server stays cheap.
        for trace in TRACES {
            let s = get(EngineKind::DeltaCfs, trace).server_ticks.unwrap();
            let n = get(EngineKind::Nfs, trace).server_ticks.unwrap();
            assert!(s <= n * 4, "{trace}: deltacfs server {s} vs nfs {n}");
        }
    }

    #[test]
    fn fig8_shapes_hold() {
        let rows = fig8(S);
        let get = |kind: EngineKind, trace: &str| -> &CellResult {
            rows.iter()
                .find(|r| r.engine == kind && r.trace == trace)
                .unwrap()
        };
        // Seafile's 1 MB chunks dominate upload on append/random/wechat.
        for trace in ["random", "wechat"] {
            let seafile = get(EngineKind::Seafile, trace).bytes_up;
            let deltacfs = get(EngineKind::DeltaCfs, trace).bytes_up;
            assert!(
                seafile > deltacfs,
                "{trace}: seafile {seafile} deltacfs {deltacfs}"
            );
        }
        // Word: NFS uploads the most and downloads nearly as much.
        let nfs = get(EngineKind::Nfs, "word");
        let deltacfs = get(EngineKind::DeltaCfs, "word");
        // At this tiny test scale the one-off initial upload dominates
        // both; the full-scale gap (checked by `repro`) is far larger.
        assert!(nfs.bytes_up as f64 > 1.5 * deltacfs.bytes_up as f64);
        assert!(nfs.bytes_down > nfs.bytes_up / 4);
        // DeltaCFS barely downloads anything.
        assert!(deltacfs.bytes_down < deltacfs.bytes_up / 10 + 4096);
    }

    #[test]
    fn fig9_dropsync_dwarfs_deltacfs() {
        let rows = fig9(S);
        for trace in ["append", "random"] {
            let dropsync = rows
                .iter()
                .find(|r| r.engine == EngineKind::Dropsync && r.trace == trace)
                .unwrap();
            let deltacfs = rows
                .iter()
                .find(|r| r.engine == EngineKind::DeltaCfs && r.trace == trace)
                .unwrap();
            assert!(
                dropsync.bytes_up > 2 * deltacfs.bytes_up,
                "{trace}: {} vs {}",
                dropsync.bytes_up,
                deltacfs.bytes_up
            );
        }
    }

    #[test]
    fn fig2_tue_is_poor() {
        let result = fig2(S);
        assert!(result.tue > 2.0, "tue {}", result.tue);
        assert!(result.uploads > 1);
    }

    #[test]
    fn table4_matches_paper() {
        let rows = table4();
        assert_eq!(rows[0].corrupted, "upload");
        assert_eq!(rows[1].corrupted, "upload");
        assert_eq!(rows[2].corrupted, "detect");
        assert_eq!(rows[2].inconsistent, "detect");
        assert_eq!(rows[0].causal, "N");
        assert_eq!(rows[2].causal, "Y");
    }

    #[test]
    fn table3_orders_correctly() {
        let cfg = FilebenchConfig {
            files: 20,
            file_size: 32 * 1024,
            ops: 200,
            seed: 3,
        };
        let rows = table3(&cfg, 2);
        let fileserver = rows.iter().find(|r| r.workload == "Fileserver").unwrap();
        // Checksums cost throughput on the write-heavy mix.
        assert!(fileserver.deltacfs_c <= fileserver.deltacfs * 1.25);
        // Webserver (read-mostly) is essentially unaffected.
        let webserver = rows.iter().find(|r| r.workload == "Webserver").unwrap();
        assert!(webserver.deltacfs_c > webserver.native * 0.5);
    }

    #[test]
    fn table5_every_fault_scenario_converges() {
        let rows = table5(&[1, 2, 3]);
        for row in &rows {
            assert!(
                row.converged,
                "scenario {} seed {} did not converge",
                row.scenario, row.seed
            );
            assert_eq!(
                row.gave_up, 0,
                "scenario {} seed {} abandoned a group",
                row.scenario, row.seed
            );
        }
        // The faults actually bit: losses forced retries, duplication
        // engaged the dedup index, crash cells saw crashes.
        let sum = |s: &str, f: fn(&FaultCellResult) -> u64| -> u64 {
            rows.iter().filter(|r| r.scenario == s).map(f).sum()
        };
        assert!(sum("lossy", |r| r.retries) > 0);
        assert!(sum("dup+reorder", |r| r.duplicates) > 0);
        assert!(sum("crash", |r| r.server_crashes) > 0);
        // Clean cells never retry.
        assert_eq!(sum("clean", |r| r.retries), 0);
    }
}
