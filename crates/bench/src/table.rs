//! Paper-style text rendering of experiment results.

use crate::experiments::{
    CellResult, EngineKind, FaultCellResult, Fig2Result, ReliabilityRow, Table3Row, TRACES,
};

fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

fn opt_ticks(t: Option<u64>) -> String {
    t.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string())
}

/// Renders Table II (CPU ticks) from `table2` rows.
pub fn render_table2(rows: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("TABLE II: CPU usage (ticks). First block: PC; second block: mobile.\n");
    out.push_str("Solutions   | Append cli/srv | Random cli/srv | Word cli/srv | WeChat cli/srv\n");
    out.push_str("------------+----------------+----------------+--------------+---------------\n");
    let engines_pc = [
        EngineKind::Dropbox,
        EngineKind::Seafile,
        EngineKind::Nfs,
        EngineKind::DeltaCfs,
    ];
    let engines_mobile = [EngineKind::Dropsync, EngineKind::DeltaCfs];
    let render_block = |engines: &[EngineKind], platform: &str, out: &mut String| {
        for &engine in engines {
            let mut line = format!("{:<12}", engine.label());
            for trace in TRACES {
                let cell = rows
                    .iter()
                    .find(|r| r.engine == engine && r.trace == trace && r.platform == platform);
                match cell {
                    Some(c) => line.push_str(&format!(
                        "| {:>7}/{:<6}",
                        opt_ticks(c.client_ticks),
                        opt_ticks(c.server_ticks)
                    )),
                    None => line.push_str("|       -/-    "),
                }
            }
            line.push('\n');
            out.push_str(&line);
        }
    };
    render_block(&engines_pc, "pc", &mut out);
    out.push_str("--- mobile ---\n");
    render_block(&engines_mobile, "mobile", &mut out);
    out
}

/// Renders Figure 8 (PC network transmission) from `fig8` rows.
pub fn render_fig8(rows: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("FIGURE 8: Network transmission on PC (MB up / MB down).\n");
    for trace in TRACES {
        out.push_str(&format!("  ({}) {}\n", trace, trace));
        for row in rows.iter().filter(|r| r.trace == trace) {
            out.push_str(&format!(
                "    {:<11} up {:>9} MB   down {:>9} MB\n",
                row.engine.label(),
                mb(row.bytes_up),
                mb(row.bytes_down)
            ));
        }
    }
    out
}

/// Renders Figure 9 (mobile network traffic) from `fig9` rows.
pub fn render_fig9(rows: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("FIGURE 9: Network traffic on mobile (MB up / MB down).\n");
    for trace in TRACES {
        for row in rows.iter().filter(|r| r.trace == trace) {
            out.push_str(&format!(
                "  {:<8} {:<9} up {:>9} MB   down {:>9} MB\n",
                trace,
                row.engine.label(),
                mb(row.bytes_up),
                mb(row.bytes_down)
            ));
        }
    }
    out
}

/// Renders Figure 1 (motivation: client resource consumption).
pub fn render_fig1(rows: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("FIGURE 1: Client resource consumption (motivation).\n");
    out.push_str("  trace   engine    client-ticks   upload-MB   engine-read-MB\n");
    for row in rows {
        out.push_str(&format!(
            "  {:<7} {:<9} {:>12} {:>11} {:>16}\n",
            row.trace,
            row.engine.label(),
            opt_ticks(row.client_ticks),
            mb(row.bytes_up),
            mb(row.engine_read)
        ));
    }
    out
}

/// Renders Figure 2 (Dropsync TUE on mobile).
pub fn render_fig2(result: &Fig2Result) -> String {
    format!(
        "FIGURE 2: Dropsync syncing WeChat on mobile.\n  TUE (traffic/update) = {:.1}\n  \
         sustained CPU = {:.0} ticks/s\n  full-file uploads = {}\n  update volume = {} MB\n",
        result.tue,
        result.ticks_per_sec,
        result.uploads,
        mb(result.update_bytes)
    )
}

/// Renders Table III (local throughput).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE III: Local IO throughput (MB/s).\n");
    out.push_str("Workload    |  Native |    FUSE | DeltaCFS | DeltaCFSc\n");
    out.push_str("------------+---------+---------+----------+----------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<12}| {:>7.1} | {:>7.1} | {:>8.1} | {:>9.1}\n",
            row.workload, row.native, row.fuse, row.deltacfs, row.deltacfs_c
        ));
    }
    out
}

/// Renders Table IV (reliability).
pub fn render_table4(rows: &[ReliabilityRow]) -> String {
    let mut out = String::new();
    out.push_str("TABLE IV: Results of reliability tests.\n");
    out.push_str("Services  | Corrupted | Inconsistent | Causal upload\n");
    out.push_str("----------+-----------+--------------+--------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<10}| {:<10}| {:<13}| {}\n",
            row.service, row.corrupted, row.inconsistent, row.causal
        ));
    }
    out
}

/// Renders Table V (fault-injection matrix).
pub fn render_table5(rows: &[FaultCellResult]) -> String {
    let mut out = String::new();
    out.push_str("TABLE V: Fault-injection matrix (seeded, deterministic).\n");
    out.push_str("Scenario    | Seed | Converged | Retries | Dups | Crashes | Gave up |   Up MB\n");
    out.push_str("------------+------+-----------+---------+------+---------+---------+--------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<12}| {:>4} | {:<9} | {:>7} | {:>4} | {:>7} | {:>7} | {:>7}\n",
            row.scenario,
            row.seed,
            if row.converged { "yes" } else { "NO" },
            row.retries,
            row.duplicates,
            row.server_crashes,
            row.gave_up,
            mb(row.bytes_up)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_smoke() {
        let rows = crate::experiments::fig9(0.005);
        let s = render_fig9(&rows);
        assert!(s.contains("Dropsync"));
        assert!(s.contains("DeltaCFS"));
        let t4 = crate::experiments::table4();
        let s = render_table4(&t4);
        assert!(s.contains("DeltaCFS"));
        assert!(s.contains("detect"));
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(mb(0), "0.00");
        assert_eq!(opt_ticks(None), "-");
        assert_eq!(opt_ticks(Some(5)), "5");
    }
}
