use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in milliseconds since the experiment start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The experiment origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since the origin.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// This time advanced by `ms` milliseconds.
    pub fn plus_millis(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }

    /// Milliseconds from `earlier` to `self` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A shared virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* clock, so a replay
/// driver, a sync engine, and its sync queue all observe consistent time.
/// The clock only moves when the driver calls [`SimClock::advance`] — the
/// relation-table timeout (1–3 s) and sync-queue upload delay (3 s) from
/// the paper become deterministic.
///
/// # Example
///
/// ```
/// use deltacfs_net::SimClock;
///
/// let clock = SimClock::new();
/// let engine_view = clock.clone();
/// clock.advance(1500);
/// assert_eq!(engine_view.now().as_millis(), 1500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.load(Ordering::SeqCst))
    }

    /// Moves the clock forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Moves the clock to `t` if `t` is in the future; never rewinds.
    pub fn advance_to(&self, t: SimTime) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(10);
        b.advance(5);
        assert_eq!(a.now(), SimTime(15));
        assert_eq!(b.now(), a.now());
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance(100);
        c.advance_to(SimTime(50));
        assert_eq!(c.now(), SimTime(100));
        c.advance_to(SimTime(150));
        assert_eq!(c.now(), SimTime(150));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime(100);
        assert_eq!(t.plus_millis(50), SimTime(150));
        assert_eq!(t.since(SimTime(40)), 60);
        assert_eq!(SimTime(10).since(SimTime(40)), 0);
        assert_eq!(format!("{t}"), "100ms");
    }
}
