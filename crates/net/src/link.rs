use crate::clock::SimTime;
use crate::fault::{FaultPlan, UploadVerdict};
use crate::profile::PlatformProfile;
use crate::traffic::TrafficStats;

/// Static characteristics of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Upload bandwidth in bytes per second; `None` means unconstrained
    /// (transfers complete instantly, as in the LAN-grade EC2 setting).
    pub bandwidth_up: Option<u64>,
    /// Download bandwidth in bytes per second; `None` means unconstrained.
    pub bandwidth_down: Option<u64>,
    /// One-way latency in milliseconds.
    pub latency_ms: u64,
}

impl LinkSpec {
    /// The PC setting: two EC2 instances in one region — effectively
    /// unconstrained for these workloads.
    pub fn pc() -> Self {
        LinkSpec {
            bandwidth_up: None,
            bandwidth_down: None,
            latency_ms: 1,
        }
    }

    /// The datacenter setting used by the scale bench: unconstrained
    /// bandwidth with sub-millisecond latency, so thousands of simulated
    /// clients measure hub dispatch cost rather than link waits.
    pub fn datacenter() -> Self {
        LinkSpec {
            bandwidth_up: None,
            bandwidth_down: None,
            latency_ms: 0,
        }
    }

    /// The mobile setting: a phone on a slow WAN (the paper reports
    /// Dropsync "keeps transmitting data during the whole experiment").
    /// 1 MB/s up, 2 MB/s down, 80 ms latency.
    pub fn mobile() -> Self {
        LinkSpec {
            bandwidth_up: Some(1024 * 1024),
            bandwidth_down: Some(2 * 1024 * 1024),
            latency_ms: 80,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::pc()
    }
}

/// An accounted, bandwidth-limited client↔cloud pipe.
///
/// The link is half-duplex per direction: an upload occupies the upward
/// direction until `bytes / bandwidth` has elapsed, and
/// [`Link::upload_busy_until`] exposes when it frees up. Engines that poll
/// the busy state to coalesce pending updates reproduce the batching the
/// paper observed on mobile (§IV-C2).
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    stats: TrafficStats,
    up_busy_until: SimTime,
    down_busy_until: SimTime,
    compute: Option<PlatformProfile>,
}

impl Link {
    /// Creates a link with the given characteristics.
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            stats: TrafficStats::new(),
            up_busy_until: SimTime::ZERO,
            down_busy_until: SimTime::ZERO,
            compute: None,
        }
    }

    /// Attaches the sender-side compute profile so codec-tagged parts
    /// charge the modeled compression CPU (`w_compressed`) before the
    /// bytes occupy the wire. Without a profile, codec-tagged parts
    /// time exactly like raw ones (bytes only).
    pub fn set_compute(&mut self, profile: PlatformProfile) {
        self.compute = Some(profile);
    }

    /// The attached compute profile, if any.
    pub fn compute(&self) -> Option<PlatformProfile> {
        self.compute
    }

    /// Earliest time a part whose payload was compressed from
    /// `compressed_from` raw bytes can start occupying the wire.
    fn codec_ready(&self, compressed_from: Option<u64>, now: SimTime) -> SimTime {
        match (self.compute, compressed_from) {
            (Some(p), Some(raw)) => now.plus_millis(p.compress_ms(raw)),
            _ => now,
        }
    }

    /// The link's static characteristics.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Accumulated traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Resets the traffic counters (not the busy state).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// When the upload direction becomes free.
    pub fn upload_busy_until(&self) -> SimTime {
        self.up_busy_until
    }

    /// When the download direction becomes free.
    pub fn download_busy_until(&self) -> SimTime {
        self.down_busy_until
    }

    /// Sends `bytes` client → cloud starting no earlier than `now`;
    /// returns the completion time.
    pub fn upload(&mut self, bytes: u64, now: SimTime) -> SimTime {
        self.upload_part(bytes, now);
        self.upload_end_msg(now)
    }

    /// Streams one part of a larger logical upload: the bytes occupy
    /// upload bandwidth (and are accounted) but no per-message latency
    /// or message count is charged — that happens once, in
    /// [`upload_end_msg`](Link::upload_end_msg). A pipelined sender
    /// calls this as each chunk becomes ready, so chunk `i + 1` can be
    /// encoded while chunk `i` is still in flight.
    pub fn upload_part(&mut self, bytes: u64, now: SimTime) -> SimTime {
        self.stats.bytes_up += bytes;
        let start = now.max(self.up_busy_until);
        self.up_busy_until = start.plus_millis(transfer_ms(bytes, self.spec.bandwidth_up));
        self.up_busy_until
    }

    /// Closes a logical upload made of [`upload_part`](Link::upload_part)
    /// calls: charges the one-way latency once and counts one message.
    /// `upload(bytes, now)` and `upload_part(bytes, now)` +
    /// `upload_end_msg(now)` produce identical timing and accounting.
    pub fn upload_end_msg(&mut self, now: SimTime) -> SimTime {
        self.stats.msgs_up += 1;
        let start = now.max(self.up_busy_until);
        self.up_busy_until = start.plus_millis(self.spec.latency_ms);
        self.up_busy_until
    }

    /// Codec-aware twin of [`upload_part`](Link::upload_part): when the
    /// part is a compressed frame (`compressed_from = Some(raw_len)`)
    /// and a compute profile is attached, the sender first pays
    /// `compress_ms(raw_len)` of CPU, then the (smaller) compressed
    /// bytes occupy upload bandwidth. Raw parts are byte-for-byte and
    /// tick-for-tick identical to `upload_part`.
    pub fn upload_part_codec(
        &mut self,
        bytes: u64,
        compressed_from: Option<u64>,
        now: SimTime,
    ) -> SimTime {
        let ready = self.codec_ready(compressed_from, now);
        self.upload_part(bytes, ready)
    }

    /// Sends `bytes` cloud → client starting no earlier than `now`;
    /// returns the completion time.
    pub fn download(&mut self, bytes: u64, now: SimTime) -> SimTime {
        self.download_part(bytes, now);
        self.download_end_msg(now)
    }

    /// Streams one part of a larger logical download: the bytes occupy
    /// download bandwidth (and are accounted) but no per-message latency
    /// or message count is charged — that happens once, in
    /// [`download_end_msg`](Link::download_end_msg). The forwarding
    /// server calls this as each chunk frame becomes ready, mirroring
    /// [`upload_part`](Link::upload_part) on the other direction.
    pub fn download_part(&mut self, bytes: u64, now: SimTime) -> SimTime {
        self.stats.bytes_down += bytes;
        let start = now.max(self.down_busy_until);
        self.down_busy_until = start.plus_millis(transfer_ms(bytes, self.spec.bandwidth_down));
        self.down_busy_until
    }

    /// Codec-aware twin of [`download_part`](Link::download_part): the
    /// forwarding server pays `compress_ms(raw_len)` of CPU for a
    /// compressed frame before its bytes occupy download bandwidth.
    /// Raw parts time exactly like `download_part`.
    pub fn download_part_codec(
        &mut self,
        bytes: u64,
        compressed_from: Option<u64>,
        now: SimTime,
    ) -> SimTime {
        let ready = self.codec_ready(compressed_from, now);
        self.download_part(bytes, ready)
    }

    /// Closes a logical download made of
    /// [`download_part`](Link::download_part) calls: charges the one-way
    /// latency once and counts one message. `download(bytes, now)` and
    /// `download_part(bytes, now)` + `download_end_msg(now)` produce
    /// identical timing and accounting.
    pub fn download_end_msg(&mut self, now: SimTime) -> SimTime {
        self.stats.msgs_down += 1;
        let start = now.max(self.down_busy_until);
        self.down_busy_until = start.plus_millis(self.spec.latency_ms);
        self.down_busy_until
    }

    /// Sends `bytes` client → cloud through `plan`'s fault schedule.
    ///
    /// A disconnected client transmits nothing (the transfer is not
    /// accounted); every other verdict puts the bytes on the wire —
    /// dropped uploads still cost bandwidth, which is how retries show up
    /// in the traffic counters. Returns the completion time of whatever
    /// was transmitted, plus the verdict for the RPC layer to act on.
    pub fn upload_faulty(
        &mut self,
        bytes: u64,
        now: SimTime,
        client: usize,
        plan: &mut FaultPlan,
    ) -> (Option<SimTime>, UploadVerdict) {
        let verdict = plan.upload_verdict(client, now);
        if verdict == UploadVerdict::Disconnected {
            return (None, verdict);
        }
        let done = self.upload(bytes, now);
        (Some(done), verdict)
    }

    /// Sends `bytes` cloud → client through `plan`'s fault schedule.
    ///
    /// Returns the completion time when the transfer arrives, or `None`
    /// when it is lost (still accounted: the server did transmit it).
    pub fn download_faulty(
        &mut self,
        bytes: u64,
        now: SimTime,
        client: usize,
        plan: &mut FaultPlan,
    ) -> Option<SimTime> {
        let done = self.download(bytes, now);
        if plan.download_lost(client, now) {
            None
        } else {
            Some(done)
        }
    }
}

fn transfer_ms(bytes: u64, bandwidth: Option<u64>) -> u64 {
    match bandwidth {
        Some(bps) if bps > 0 => bytes.saturating_mul(1000).div_ceil(bps),
        _ => 0,
    }
}

impl Default for Link {
    fn default() -> Self {
        Self::new(LinkSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_link_is_instantaneous_plus_latency() {
        let mut link = Link::new(LinkSpec::pc());
        let done = link.upload(100 * 1024 * 1024, SimTime::ZERO);
        assert_eq!(done, SimTime(1));
        assert_eq!(link.stats().bytes_up, 100 * 1024 * 1024);
    }

    #[test]
    fn bandwidth_limits_serialize_transfers() {
        let spec = LinkSpec {
            bandwidth_up: Some(1000), // 1000 B/s
            bandwidth_down: None,
            latency_ms: 0,
        };
        let mut link = Link::new(spec);
        let d1 = link.upload(500, SimTime::ZERO); // 500 ms
        assert_eq!(d1, SimTime(500));
        // Second transfer queues behind the first.
        let d2 = link.upload(1000, SimTime(100));
        assert_eq!(d2, SimTime(1500));
        assert_eq!(link.upload_busy_until(), SimTime(1500));
    }

    #[test]
    fn directions_are_independent() {
        let spec = LinkSpec {
            bandwidth_up: Some(1000),
            bandwidth_down: Some(1000),
            latency_ms: 0,
        };
        let mut link = Link::new(spec);
        link.upload(1000, SimTime::ZERO);
        let down_done = link.download(1000, SimTime::ZERO);
        assert_eq!(down_done, SimTime(1000));
        assert_eq!(link.stats().msgs_up, 1);
        assert_eq!(link.stats().msgs_down, 1);
    }

    #[test]
    fn mobile_spec_is_slow() {
        let mut link = Link::new(LinkSpec::mobile());
        let done = link.upload(10 * 1024 * 1024, SimTime::ZERO);
        // 10 MB at 1 MB/s plus 80 ms latency.
        assert!(done.as_millis() >= 10_000);
    }

    #[test]
    fn chunked_upload_matches_single_shot_timing_and_accounting() {
        let spec = LinkSpec {
            bandwidth_up: Some(1000),
            bandwidth_down: None,
            latency_ms: 40,
        };
        let mut whole = Link::new(spec);
        let done_whole = whole.upload(3000, SimTime::ZERO);

        let mut parts = Link::new(spec);
        parts.upload_part(1000, SimTime::ZERO);
        parts.upload_part(1000, SimTime(100));
        parts.upload_part(1000, SimTime(1900));
        let done_parts = parts.upload_end_msg(SimTime(1900));

        assert_eq!(done_parts, done_whole);
        assert_eq!(parts.stats(), whole.stats());
        assert_eq!(parts.stats().msgs_up, 1);
    }

    #[test]
    fn upload_parts_only_charge_latency_at_end_of_message() {
        let mut link = Link::new(LinkSpec {
            bandwidth_up: None,
            bandwidth_down: None,
            latency_ms: 80,
        });
        assert_eq!(link.upload_part(4096, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(link.stats().msgs_up, 0);
        assert_eq!(link.upload_end_msg(SimTime::ZERO), SimTime(80));
        assert_eq!(link.stats().msgs_up, 1);
    }

    #[test]
    fn chunked_download_matches_single_shot_timing_and_accounting() {
        let spec = LinkSpec {
            bandwidth_up: None,
            bandwidth_down: Some(1000),
            latency_ms: 40,
        };
        let mut whole = Link::new(spec);
        let done_whole = whole.download(3000, SimTime::ZERO);

        let mut parts = Link::new(spec);
        parts.download_part(1000, SimTime::ZERO);
        parts.download_part(1000, SimTime(100));
        parts.download_part(1000, SimTime(1900));
        let done_parts = parts.download_end_msg(SimTime(1900));

        assert_eq!(done_parts, done_whole);
        assert_eq!(parts.stats(), whole.stats());
        assert_eq!(parts.stats().msgs_down, 1);
    }

    #[test]
    fn download_parts_only_charge_latency_at_end_of_message() {
        let mut link = Link::new(LinkSpec {
            bandwidth_up: None,
            bandwidth_down: None,
            latency_ms: 80,
        });
        assert_eq!(link.download_part(4096, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(link.stats().msgs_down, 0);
        assert_eq!(link.download_end_msg(SimTime::ZERO), SimTime(80));
        assert_eq!(link.stats().msgs_down, 1);
    }

    #[test]
    fn upload_and_download_timing_parity_per_profile() {
        // For identical byte counts on a link whose two directions share
        // a bandwidth figure, upload and download must finish at the same
        // time and charge symmetric counters — whether sent whole or as
        // parts with an end-of-message settle. Guards the forward-path
        // asymmetry where downloads charged latency per part.
        let symmetric = LinkSpec {
            bandwidth_up: Some(512 * 1024),
            bandwidth_down: Some(512 * 1024),
            latency_ms: 25,
        };
        for spec in [
            LinkSpec::pc(),
            LinkSpec::datacenter(),
            symmetric,
        ] {
            for bytes in [0u64, 1, 4096, 3 * 1024 * 1024] {
                let mut up = Link::new(spec);
                let mut down = Link::new(spec);
                let done_up = up.upload(bytes, SimTime::ZERO);
                let done_down = down.download(bytes, SimTime::ZERO);
                assert_eq!(done_up, done_down, "single-shot, {bytes} bytes");
                assert_eq!(up.stats().bytes_up, down.stats().bytes_down);
                assert_eq!(up.stats().msgs_up, down.stats().msgs_down);

                // Same message split into three parts: parity must hold
                // part-for-part too.
                let mut up = Link::new(spec);
                let mut down = Link::new(spec);
                let part = bytes / 3;
                let rest = bytes - 2 * part;
                for b in [part, part, rest] {
                    let u = up.upload_part(b, SimTime::ZERO);
                    let d = down.download_part(b, SimTime::ZERO);
                    assert_eq!(u, d, "part of {b} bytes");
                }
                let done_up = up.upload_end_msg(SimTime::ZERO);
                let done_down = down.download_end_msg(SimTime::ZERO);
                assert_eq!(done_up, done_down, "chunked, {bytes} bytes");
                assert_eq!(up.stats().bytes_up, down.stats().bytes_down);
                assert_eq!(up.stats().msgs_up, down.stats().msgs_down);
            }
        }
    }

    #[test]
    fn codec_parts_without_profile_or_tag_match_raw_parts() {
        let spec = LinkSpec::mobile();
        // No compute profile: codec-tagged parts time like raw parts.
        let mut raw = Link::new(spec);
        let mut codec = Link::new(spec);
        let a = raw.upload_part(4096, SimTime::ZERO);
        let b = codec.upload_part_codec(4096, Some(1 << 20), SimTime::ZERO);
        assert_eq!(a, b);
        // Profile attached but the frame ships raw: still identical.
        let mut codec = Link::new(spec);
        codec.set_compute(PlatformProfile::mobile());
        let c = codec.upload_part_codec(4096, None, SimTime::ZERO);
        assert_eq!(a, c);
        assert_eq!(raw.stats(), codec.stats());
    }

    #[test]
    fn compressed_parts_pay_compression_cpu_before_the_wire() {
        let mut link = Link::new(LinkSpec {
            bandwidth_up: Some(1024 * 1024),
            bandwidth_down: Some(1024 * 1024),
            latency_ms: 0,
        });
        link.set_compute(PlatformProfile::mobile());
        let raw_len = 1u64 << 20;
        let cpu = PlatformProfile::mobile().compress_ms(raw_len);
        assert!(cpu > 0);
        // Half-ratio compressed frame: CPU first, then the smaller
        // transfer; the total is compress_ms + 512 KiB at 1 MiB/s.
        let done = link.upload_part_codec(raw_len / 2, Some(raw_len), SimTime::ZERO);
        assert_eq!(done, SimTime(cpu + 500));
        // Download direction mirrors it.
        let done = link.download_part_codec(raw_len / 2, Some(raw_len), SimTime::ZERO);
        assert_eq!(done, SimTime(cpu + 500));
        // Mobile codec CPU is dearer than PC's, same work.
        assert!(cpu > PlatformProfile::pc().compress_ms(raw_len));
    }

    #[test]
    fn reset_stats_keeps_busy_state() {
        let mut link = Link::new(LinkSpec {
            bandwidth_up: Some(100),
            bandwidth_down: None,
            latency_ms: 0,
        });
        link.upload(100, SimTime::ZERO);
        link.reset_stats();
        assert_eq!(link.stats().bytes_up, 0);
        assert_eq!(link.upload_busy_until(), SimTime(1000));
    }
}
