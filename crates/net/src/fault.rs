//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultSpec`] describes *what* can go wrong — upload/download loss,
//! duplicated and reordered deliveries, mid-upload server crashes, client
//! disconnect windows — and a [`FaultPlan`] turns it into a reproducible
//! stream of decisions: every verdict is a pure function of the spec's
//! seed and the sequence of calls made against the plan. Replaying the
//! same workload against the same spec yields byte-identical fault
//! schedules, which is what makes failing seeds reproducible.
//!
//! The plan is threaded through [`Link`](crate::Link) (see
//! [`Link::upload_faulty`](crate::Link::upload_faulty)) and through the
//! client/server RPC pump in `deltacfs-core`; [`SimTime`] anchors the
//! disconnect windows to the shared virtual clock.

use rand::{Rng, SeedableRng, StdRng};

use crate::clock::SimTime;

/// When, relative to applying an uploaded group, the server crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// The server dies after receiving the upload but *before* applying
    /// it: the group is lost and must be retransmitted.
    BeforeApply,
    /// The server dies after applying (and persisting) the group but
    /// before the acknowledgement reaches the client: the client retries
    /// and the server must deduplicate.
    AfterApply,
}

/// A scheduled server crash, keyed on the 1-based index of the upload
/// attempt that triggers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which upload attempt (1-based, counted across all clients) dies.
    pub at_upload: u64,
    /// Whether the group had been applied when the server died.
    pub phase: CrashPhase,
}

/// A window of simulated time during which one client has no network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisconnectWindow {
    /// The disconnected client (hub slot index).
    pub client: usize,
    /// Window start, inclusive (ms of simulated time).
    pub from_ms: u64,
    /// Window end, exclusive.
    pub until_ms: u64,
}

impl DisconnectWindow {
    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        (self.from_ms..self.until_ms).contains(&now.as_millis())
    }
}

/// Declarative description of the faults to inject.
///
/// Probabilities are per-event; scheduled events (`crash_points`,
/// `drop_uploads`, `disconnects`) fire deterministically regardless of
/// the probabilistic draws, so tests can pin exact failure scenarios.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Probability that a client→server upload is lost in transit.
    pub upload_drop: f64,
    /// Probability that a server→client transfer (ack or forwarded
    /// update) is lost in transit.
    pub download_drop: f64,
    /// Probability that a delivered upload arrives twice.
    pub duplicate: f64,
    /// Probability that a duplicated copy is *reordered* — held back and
    /// delivered only after a later group.
    pub reorder: f64,
    /// Upload attempts (1-based indices) that are dropped unconditionally.
    pub drop_uploads: Vec<u64>,
    /// Scheduled server crashes.
    pub crash_points: Vec<CrashPoint>,
    /// Client offline windows.
    pub disconnects: Vec<DisconnectWindow>,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a baseline cell).
    pub fn clean(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Sets the probabilistic loss/duplication rates.
    pub fn with_rates(mut self, upload_drop: f64, download_drop: f64, duplicate: f64) -> Self {
        self.upload_drop = upload_drop;
        self.download_drop = download_drop;
        self.duplicate = duplicate;
        self
    }

    /// Sets the reorder probability for duplicated deliveries.
    pub fn with_reorder(mut self, reorder: f64) -> Self {
        self.reorder = reorder;
        self
    }

    /// Schedules a server crash at the given upload attempt.
    pub fn with_crash(mut self, at_upload: u64, phase: CrashPhase) -> Self {
        self.crash_points.push(CrashPoint { at_upload, phase });
        self
    }

    /// Drops the given upload attempt unconditionally.
    pub fn with_dropped_upload(mut self, at_upload: u64) -> Self {
        self.drop_uploads.push(at_upload);
        self
    }

    /// Takes `client` offline for `[from_ms, until_ms)`.
    pub fn with_disconnect(mut self, client: usize, from_ms: u64, until_ms: u64) -> Self {
        self.disconnects.push(DisconnectWindow {
            client,
            from_ms,
            until_ms,
        });
        self
    }
}

deltacfs_obs::metric_struct! {
    /// Counters describing what the plan actually injected.
    ///
    /// Defined through [`metric_struct!`](deltacfs_obs::metric_struct) so
    /// topology aggregation ([`Merge`](deltacfs_obs::Merge)) and registry
    /// export ([`FaultStats::export_counters`]) always cover every field —
    /// a new fault kind can't be silently dropped from either.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct FaultStats {
        /// Upload attempts that reached the verdict stage (client online).
        pub uploads_attempted: u64,
        /// Uploads lost in transit.
        pub uploads_dropped: u64,
        /// Uploads delivered twice.
        pub uploads_duplicated: u64,
        /// Duplicated copies held back and delivered out of order.
        pub duplicates_reordered: u64,
        /// Server→client transfers lost (acks and forwarded updates).
        pub downloads_dropped: u64,
        /// Server crashes before applying the in-flight group.
        pub crashes_before_apply: u64,
        /// Server crashes after applying (ack lost).
        pub crashes_after_apply: u64,
        /// Sends suppressed because the client was inside a disconnect window.
        pub disconnected_sends: u64,
    }
}

impl FaultStats {
    /// Total injections of any kind that actually fired (excludes
    /// `uploads_attempted`, which counts opportunities, not faults).
    pub fn total_fired(&self) -> u64 {
        self.uploads_dropped
            + self.uploads_duplicated
            + self.duplicates_reordered
            + self.downloads_dropped
            + self.crashes_before_apply
            + self.crashes_after_apply
            + self.disconnected_sends
    }
}

/// The verdict for one upload attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadVerdict {
    /// The client is offline: nothing goes on the wire.
    Disconnected,
    /// The bytes went out but never arrived.
    Dropped,
    /// The upload arrived but the server died before applying it.
    CrashBeforeApply,
    /// The upload arrived and was applied.
    Delivered {
        /// The network delivered a second copy of the group.
        duplicate: bool,
        /// The server died right after applying, losing the ack.
        crash_after_apply: bool,
    },
}

/// A seeded, stateful decision stream realizing a [`FaultSpec`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: StdRng,
    upload_seq: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// Instantiates the plan; all randomness derives from `spec.seed`.
    pub fn new(spec: FaultSpec) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x5de1_7acf_5f4a_11a7);
        FaultPlan {
            spec,
            rng,
            upload_seq: 0,
            stats: FaultStats::default(),
        }
    }

    /// The spec this plan realizes.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The seed needed to reproduce this plan's decision stream.
    pub fn seed(&self) -> u64 {
        self.spec.seed
    }

    /// What the plan has injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether `client` is inside a disconnect window at `now`.
    pub fn is_disconnected(&self, client: usize, now: SimTime) -> bool {
        self.spec
            .disconnects
            .iter()
            .any(|w| w.client == client && w.contains(now))
    }

    /// When `client`'s current disconnect window ends, if it is inside one.
    pub fn disconnect_until(&self, client: usize, now: SimTime) -> Option<SimTime> {
        self.spec
            .disconnects
            .iter()
            .filter(|w| w.client == client && w.contains(now))
            .map(|w| SimTime(w.until_ms))
            .max()
    }

    /// Decides the fate of the next upload attempt from `client`.
    ///
    /// Consumes the same number of random draws for every delivered
    /// attempt, so scheduled events do not shift the probabilistic
    /// stream underneath reruns with different crash schedules.
    pub fn upload_verdict(&mut self, client: usize, now: SimTime) -> UploadVerdict {
        if self.is_disconnected(client, now) {
            self.stats.disconnected_sends += 1;
            return UploadVerdict::Disconnected;
        }
        self.upload_seq += 1;
        self.stats.uploads_attempted += 1;
        let seq = self.upload_seq;
        let drop_draw = self.rng.gen_bool(self.spec.upload_drop.clamp(0.0, 1.0));
        let dup_draw = self.rng.gen_bool(self.spec.duplicate.clamp(0.0, 1.0));
        if let Some(cp) = self
            .spec
            .crash_points
            .iter()
            .find(|cp| cp.at_upload == seq)
        {
            match cp.phase {
                CrashPhase::BeforeApply => {
                    self.stats.crashes_before_apply += 1;
                    return UploadVerdict::CrashBeforeApply;
                }
                CrashPhase::AfterApply => {
                    self.stats.crashes_after_apply += 1;
                    return UploadVerdict::Delivered {
                        duplicate: false,
                        crash_after_apply: true,
                    };
                }
            }
        }
        if self.spec.drop_uploads.contains(&seq) || drop_draw {
            self.stats.uploads_dropped += 1;
            return UploadVerdict::Dropped;
        }
        if dup_draw {
            self.stats.uploads_duplicated += 1;
        }
        UploadVerdict::Delivered {
            duplicate: dup_draw,
            crash_after_apply: false,
        }
    }

    /// Whether a duplicated copy should be held back and delivered after
    /// a later group (out-of-order delivery).
    pub fn defer_duplicate(&mut self) -> bool {
        let defer = self.rng.gen_bool(self.spec.reorder.clamp(0.0, 1.0));
        if defer {
            self.stats.duplicates_reordered += 1;
        }
        defer
    }

    /// Decides whether a server→client transfer towards `client` is lost
    /// (the client being offline counts as a loss).
    pub fn download_lost(&mut self, client: usize, now: SimTime) -> bool {
        if self.is_disconnected(client, now) {
            self.stats.downloads_dropped += 1;
            return true;
        }
        let lost = self.rng.gen_bool(self.spec.download_drop.clamp(0.0, 1.0));
        if lost {
            self.stats.downloads_dropped += 1;
        }
        lost
    }
}

/// The fault schedules driving one multi-client run.
///
/// Two shapes exist:
///
/// * **Shared** — the seed harness's original model: one [`FaultPlan`]
///   (one RNG, one global upload counter) serves every client, so crash
///   points key on the 1-based upload attempt counted *across all
///   clients* and a single seed reproduces the whole run.
/// * **Per-client** — one independent plan per client, each with its own
///   seed, RNG, rates, crash schedule (keyed on *that client's* upload
///   attempts), and disconnect windows. This is what lets two or more
///   concurrent faulty writers carry genuinely independent
///   drop/dup/reorder/crash schedules: one writer's retries never shift
///   another writer's decision stream.
///
/// Aggregate counters sum over all plans.
#[derive(Debug, Clone)]
pub struct FaultTopology {
    plans: Vec<FaultPlan>,
    shared: bool,
}

impl FaultTopology {
    /// One plan shared by every client (the single-writer model).
    pub fn shared(spec: FaultSpec) -> Self {
        FaultTopology {
            plans: vec![FaultPlan::new(spec)],
            shared: true,
        }
    }

    /// One independent plan per client; `specs[i]` drives client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn per_client(specs: Vec<FaultSpec>) -> Self {
        assert!(!specs.is_empty(), "a topology needs at least one spec");
        FaultTopology {
            plans: specs.into_iter().map(FaultPlan::new).collect(),
            shared: false,
        }
    }

    /// Whether every client draws from one shared plan.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// The plan deciding `client`'s fate.
    ///
    /// # Panics
    ///
    /// Panics in per-client mode if `client` has no plan.
    pub fn plan_for(&mut self, client: usize) -> &mut FaultPlan {
        if self.shared {
            &mut self.plans[0]
        } else {
            &mut self.plans[client]
        }
    }

    /// The seed of each plan, in client order (one entry when shared).
    pub fn seeds(&self) -> Vec<u64> {
        self.plans.iter().map(FaultPlan::seed).collect()
    }

    /// Injected-fault counters summed over every plan.
    pub fn stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for plan in &self.plans {
            deltacfs_obs::Merge::merge_from(&mut total, &plan.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts(plan: &mut FaultPlan, n: usize) -> Vec<UploadVerdict> {
        (0..n)
            .map(|_| plan.upload_verdict(0, SimTime::ZERO))
            .collect()
    }

    #[test]
    fn same_seed_same_decisions() {
        let spec = FaultSpec::clean(42).with_rates(0.3, 0.2, 0.25).with_reorder(0.5);
        let mut a = FaultPlan::new(spec.clone());
        let mut b = FaultPlan::new(spec);
        assert_eq!(verdicts(&mut a, 50), verdicts(&mut b, 50));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(FaultSpec::clean(1).with_rates(0.5, 0.0, 0.0));
        let mut b = FaultPlan::new(FaultSpec::clean(2).with_rates(0.5, 0.0, 0.0));
        assert_ne!(verdicts(&mut a, 64), verdicts(&mut b, 64));
    }

    #[test]
    fn clean_spec_injects_nothing() {
        let mut plan = FaultPlan::new(FaultSpec::clean(7));
        for v in verdicts(&mut plan, 20) {
            assert_eq!(
                v,
                UploadVerdict::Delivered {
                    duplicate: false,
                    crash_after_apply: false
                }
            );
        }
        assert!(!plan.download_lost(0, SimTime::ZERO));
        assert_eq!(plan.stats().uploads_dropped, 0);
    }

    #[test]
    fn scheduled_crash_fires_at_exact_upload() {
        let spec = FaultSpec::clean(3)
            .with_crash(2, CrashPhase::BeforeApply)
            .with_crash(4, CrashPhase::AfterApply);
        let mut plan = FaultPlan::new(spec);
        let vs = verdicts(&mut plan, 5);
        assert_eq!(vs[1], UploadVerdict::CrashBeforeApply);
        assert_eq!(
            vs[3],
            UploadVerdict::Delivered {
                duplicate: false,
                crash_after_apply: true
            }
        );
        assert_eq!(plan.stats().crashes_before_apply, 1);
        assert_eq!(plan.stats().crashes_after_apply, 1);
    }

    #[test]
    fn scheduled_drop_fires_regardless_of_rates() {
        let spec = FaultSpec::clean(9).with_dropped_upload(1);
        let mut plan = FaultPlan::new(spec);
        assert_eq!(
            plan.upload_verdict(0, SimTime::ZERO),
            UploadVerdict::Dropped
        );
    }

    #[test]
    fn disconnect_window_suppresses_sends() {
        let spec = FaultSpec::clean(5).with_disconnect(1, 100, 200);
        let mut plan = FaultPlan::new(spec);
        assert!(plan.is_disconnected(1, SimTime(150)));
        assert!(!plan.is_disconnected(0, SimTime(150)));
        assert!(!plan.is_disconnected(1, SimTime(200)));
        assert_eq!(
            plan.upload_verdict(1, SimTime(150)),
            UploadVerdict::Disconnected
        );
        assert_eq!(plan.disconnect_until(1, SimTime(150)), Some(SimTime(200)));
        assert!(plan.download_lost(1, SimTime(199)));
        assert_eq!(plan.stats().disconnected_sends, 1);
    }

    #[test]
    fn crash_points_do_not_shift_probabilistic_stream() {
        // Two plans with the same seed and rates, one with a crash point:
        // the verdicts *after* the crash attempt must match the baseline.
        let base = FaultSpec::clean(11).with_rates(0.4, 0.0, 0.3);
        let mut a = FaultPlan::new(base.clone());
        let mut b = FaultPlan::new(base.with_crash(3, CrashPhase::BeforeApply));
        let va = verdicts(&mut a, 10);
        let vb = verdicts(&mut b, 10);
        assert_eq!(va[..2], vb[..2]);
        assert_eq!(va[3..], vb[3..]);
    }
}
