use deltacfs_delta::Cost;
use serde::Serialize;

/// Converts algorithmic work into platform "CPU ticks".
///
/// Table II of the paper reports CPU ticks on two incomparable platforms
/// (an EC2 Xeon and a Galaxy Note3; the paper itself warns the numbers
/// cannot be compared across platforms). What *is* comparable is the work
/// each engine performs; this profile weights each work class by an
/// approximate cycles-per-byte factor and scales by the platform's
/// slowness. The defaults were set once from coarse public numbers (MD5
/// ≈ 5 cycles/B, rolling ≈ 1, memcmp/memcpy ≈ 0.25, gear ≈ 0.7,
/// LZ ≈ 2.5) and are *not* fitted to the paper's outputs — the shape of
/// Table II must emerge from the work counts alone.
///
/// # Example
///
/// ```
/// use deltacfs_delta::Cost;
/// use deltacfs_net::PlatformProfile;
///
/// let mut cost = Cost::new();
/// cost.bytes_strong_hashed = 1_000_000;
/// let pc = PlatformProfile::pc();
/// let mobile = PlatformProfile::mobile();
/// assert!(mobile.ticks(&cost, 0) > pc.ticks(&cost, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlatformProfile {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Ticks per rolled byte.
    pub w_rolled: f64,
    /// Ticks per strong-hashed byte.
    pub w_strong: f64,
    /// Ticks per bitwise-compared byte.
    pub w_compared: f64,
    /// Ticks per gear-chunked byte.
    pub w_chunked: f64,
    /// Ticks per compressed byte.
    pub w_compressed: f64,
    /// Ticks per copied byte.
    pub w_copied: f64,
    /// Ticks per byte the engine read back from the file system
    /// (IO amplification cost: page cache churn, mobile energy).
    pub w_engine_read: f64,
    /// Ticks per byte moved over the network (protocol stack cost; the
    /// paper attributes NFS's server ticks mostly to this).
    pub w_net: f64,
    /// Fixed ticks per primitive invocation.
    pub w_op: f64,
    /// Overall platform slowness multiplier.
    pub scale: f64,
}

/// Base weights in ticks-per-megabyte at scale 1.0.
const PER_MB: f64 = 1.0 / (1024.0 * 1024.0);

impl PlatformProfile {
    /// The PC platform (EC2 m4.xlarge-class Xeon).
    pub fn pc() -> Self {
        PlatformProfile {
            name: "pc",
            w_rolled: 1.0 * PER_MB,
            w_strong: 5.0 * PER_MB,
            w_compared: 0.25 * PER_MB,
            w_chunked: 0.7 * PER_MB,
            w_compressed: 2.5 * PER_MB,
            w_copied: 0.25 * PER_MB,
            w_engine_read: 0.5 * PER_MB,
            w_net: 0.5 * PER_MB,
            w_op: 0.000_1,
            scale: 10.0,
        }
    }

    /// The mobile platform (Galaxy Note3-class ARM), roughly an order of
    /// magnitude slower per byte and with relatively more expensive IO.
    pub fn mobile() -> Self {
        PlatformProfile {
            name: "mobile",
            w_engine_read: 1.5 * PER_MB,
            w_net: 2.0 * PER_MB,
            scale: 80.0,
            ..Self::pc()
        }
    }

    /// Simulated milliseconds of codec CPU to compress `raw_bytes` on
    /// this platform, interpreting ticks as milliseconds (the convention
    /// the engine already uses when mapping tick totals onto the
    /// simulated clock). This is the link-side charge for a
    /// codec-tagged frame: the wire cannot start shipping the chunk
    /// before the compressor has finished with it.
    pub fn compress_ms(&self, raw_bytes: u64) -> u64 {
        (raw_bytes as f64 * self.w_compressed * self.scale).round() as u64
    }

    /// Converts a work accumulator plus network volume into ticks.
    pub fn ticks(&self, cost: &Cost, net_bytes: u64) -> u64 {
        let raw = cost.bytes_rolled as f64 * self.w_rolled
            + cost.bytes_strong_hashed as f64 * self.w_strong
            + cost.bytes_compared as f64 * self.w_compared
            + cost.bytes_chunked as f64 * self.w_chunked
            + cost.bytes_compressed as f64 * self.w_compressed
            + cost.bytes_copied as f64 * self.w_copied
            + cost.bytes_engine_read as f64 * self.w_engine_read
            + net_bytes as f64 * self.w_net
            + cost.ops as f64 * self.w_op;
        (raw * self.scale).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_hashing_costs_more_than_comparison() {
        let p = PlatformProfile::pc();
        let mut hashed = Cost::new();
        hashed.bytes_strong_hashed = 1 << 20;
        let mut compared = Cost::new();
        compared.bytes_compared = 1 << 20;
        assert!(p.ticks(&hashed, 0) > 10 * p.ticks(&compared, 0));
    }

    #[test]
    fn mobile_is_slower_than_pc() {
        let mut cost = Cost::new();
        cost.bytes_rolled = 1 << 20;
        assert!(
            PlatformProfile::mobile().ticks(&cost, 0) >= 5 * PlatformProfile::pc().ticks(&cost, 0)
        );
    }

    #[test]
    fn network_bytes_cost_cpu() {
        let p = PlatformProfile::pc();
        let idle = Cost::new();
        assert_eq!(p.ticks(&idle, 0), 0);
        assert!(p.ticks(&idle, 100 << 20) > 0);
    }

    #[test]
    fn ticks_are_monotone_in_work() {
        let p = PlatformProfile::pc();
        let mut small = Cost::new();
        small.bytes_rolled = 1000;
        let mut large = small;
        large.bytes_rolled = 1_000_000;
        assert!(p.ticks(&large, 0) > p.ticks(&small, 0));
    }
}
