use deltacfs_obs::metric_struct;
use serde::Serialize;

metric_struct! {
    /// Bytes and messages moved over a [`Link`](crate::Link), by direction.
    ///
    /// "Upload" is client → cloud. These counters feed Figures 8 and 9 of the
    /// paper directly. Defined through [`metric_struct!`] so aggregation
    /// ([`Merge`](deltacfs_obs::Merge)) and registry export
    /// ([`TrafficStats::export_counters`]) always cover every field.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
    pub struct TrafficStats {
        /// Bytes sent client → cloud.
        pub bytes_up: u64,
        /// Bytes sent cloud → client.
        pub bytes_down: u64,
        /// Messages sent client → cloud.
        pub msgs_up: u64,
        /// Messages sent cloud → client.
        pub msgs_down: u64,
    }
}

impl TrafficStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        deltacfs_obs::Merge::merge_from(self, other);
    }

    /// Traffic Usage Efficiency as defined in the paper's Fig. 2: total
    /// sync traffic divided by the size of the actual data update.
    /// Lower is better; 1.0 is ideal.
    pub fn tue(&self, update_bytes: u64) -> f64 {
        if update_bytes == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / update_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_totals() {
        let mut a = TrafficStats {
            bytes_up: 10,
            bytes_down: 5,
            msgs_up: 1,
            msgs_down: 2,
        };
        a.merge(&a.clone());
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.msgs_up, 2);
    }

    #[test]
    fn tue_definition() {
        let t = TrafficStats {
            bytes_up: 150,
            bytes_down: 50,
            msgs_up: 0,
            msgs_down: 0,
        };
        assert!((t.tue(100) - 2.0).abs() < 1e-9);
        assert_eq!(t.tue(0), 0.0);
    }

    #[test]
    fn export_covers_every_field() {
        let reg = deltacfs_obs::Registry::new();
        let t = TrafficStats {
            bytes_up: 9,
            bytes_down: 8,
            msgs_up: 7,
            msgs_down: 6,
        };
        t.export_counters(&reg, "traffic", None);
        let prom = reg.snapshot().to_prometheus();
        for line in [
            "traffic_bytes_up 9",
            "traffic_bytes_down 8",
            "traffic_msgs_up 7",
            "traffic_msgs_down 6",
        ] {
            assert!(prom.contains(line), "missing {line} in:\n{prom}");
        }
    }
}
