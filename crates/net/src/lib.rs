//! # deltacfs-net
//!
//! The simulated environment for the DeltaCFS evaluation: a virtual
//! clock, network links with bandwidth/latency and byte accounting, and
//! platform cost profiles that convert algorithmic work
//! ([`Cost`](deltacfs_delta::Cost)) into the "CPU ticks" the paper's
//! Table II reports.
//!
//! The paper ran on two EC2 `m4.xlarge` instances (PC experiments) and a
//! Samsung Galaxy Note3 over a WAN (mobile experiments). Neither platform
//! is reproducible, but the quantities that make DeltaCFS win are: *how
//! many bytes each engine rolls/hashes/compares/compresses* and *how many
//! bytes it moves*. This crate makes both first-class:
//!
//! * [`SimClock`] — a shared virtual clock (milliseconds). Trace replay
//!   advances it; relation-table timeouts and sync-queue upload delays
//!   read it.
//! * [`Link`] — an accounted, optionally bandwidth-limited pipe. Uploads
//!   occupy the link for `bytes / bandwidth`, which is what produces
//!   Dropsync's unintentional batching on mobile (paper §IV-C2).
//! * [`PlatformProfile`] — per-platform weights over work counters; the
//!   [`PlatformProfile::pc`] and [`PlatformProfile::mobile`] presets model
//!   the Xeon and the wimpy phone core respectively.

#![warn(missing_docs)]

mod clock;
mod fault;
mod link;
mod profile;
mod traffic;

pub use clock::{SimClock, SimTime};
pub use fault::{
    CrashPhase, CrashPoint, DisconnectWindow, FaultPlan, FaultSpec, FaultStats, FaultTopology,
    UploadVerdict,
};
pub use link::{Link, LinkSpec};
pub use profile::PlatformProfile;
pub use traffic::TrafficStats;
