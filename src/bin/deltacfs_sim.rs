//! An interactive DeltaCFS sandbox: type file operations, watch what the
//! sync engine ships.
//!
//! ```text
//! cargo run --bin deltacfs_sim
//! > write /notes.txt hello world
//! > sync
//! > status
//! ```
//!
//! Also scriptable: `printf 'write /a hi\nsync\nstatus\n' | cargo run
//! --bin deltacfs_sim`.

use std::io::{BufRead, Write as _};

use deltacfs::core::{DeltaCfsConfig, DeltaCfsSystem, SyncEngine};
use deltacfs::net::{LinkSpec, SimClock};
use deltacfs::vfs::Vfs;

const HELP: &str = "\
commands:
  write <path> <text...>    create (if needed) and write at offset 0
  append <path> <text...>   append text at the end
  save <path> <text...>     transactional save (rename dance, like Word)
  mv <src> <dst>            rename
  rm <path>                 unlink
  mkdir <path>              create directory
  tick [ms]                 advance the simulated clock (default 4000)
  sync                      tick, then upload whatever is ready
  flush                     force-upload everything pending
  ls                        list local and cloud files
  history <path>            cloud-side version history
  status                    queue depth, traffic, and work counters
  help                      this text
  quit                      exit";

fn main() {
    let clock = SimClock::new();
    let mut sys = DeltaCfsSystem::new(DeltaCfsConfig::new(), clock.clone(), LinkSpec::pc());
    let mut fs = Vfs::new();
    fs.enable_event_log();
    let mut save_counter = 0u64;

    println!("DeltaCFS simulator — type `help` for commands");
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let mut parts = line.trim().splitn(3, ' ');
        let cmd = parts.next().unwrap_or("");
        let arg1 = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("");
        let result = match cmd {
            "" => Ok(()),
            "help" => {
                println!("{HELP}");
                Ok(())
            }
            "quit" | "exit" => break,
            "write" => do_write(&mut fs, arg1, rest, false),
            "append" => do_write(&mut fs, arg1, rest, true),
            "save" => do_save(&mut fs, &mut sys, arg1, rest, &mut save_counter),
            "mv" => fs.rename(arg1, rest).map_err(|e| e.to_string()),
            "rm" => fs.unlink(arg1).map_err(|e| e.to_string()),
            "mkdir" => fs.mkdir_all(arg1).map_err(|e| e.to_string()),
            "tick" => {
                let ms: u64 = arg1.parse().unwrap_or(4_000);
                clock.advance(ms);
                println!("clock now {}", clock.now());
                Ok(())
            }
            "sync" => {
                clock.advance(4_000);
                pump(&mut sys, &mut fs);
                let before = sys.report().traffic.bytes_up;
                sys.tick(&fs);
                println!("uploaded {} bytes", sys.report().traffic.bytes_up - before);
                Ok(())
            }
            "flush" => {
                pump(&mut sys, &mut fs);
                let before = sys.report().traffic.bytes_up;
                sys.finish(&fs);
                println!("uploaded {} bytes", sys.report().traffic.bytes_up - before);
                Ok(())
            }
            "ls" => {
                println!("local:");
                for p in fs.walk_files("/").unwrap_or_default() {
                    let size = fs.metadata(p.as_str()).map(|m| m.size).unwrap_or(0);
                    println!("  {p}  ({size} B)");
                }
                println!("cloud:");
                for p in sys.server().paths() {
                    let size = sys.server().file(&p).map(<[u8]>::len).unwrap_or(0);
                    println!("  {p}  ({size} B)");
                }
                Ok(())
            }
            "history" => {
                for v in sys.server().version_history(arg1) {
                    let len = sys.server().file_at(arg1, v).map(<[u8]>::len).unwrap_or(0);
                    println!("  {v}  {len} B");
                }
                Ok(())
            }
            "status" => {
                pump(&mut sys, &mut fs);
                let r = sys.report();
                println!(
                    "queued nodes: {}\ntraffic: {} up / {} down\nwork: {} B rolled, {} B compared, {} B strong-hashed",
                    sys.client().queued_nodes(),
                    r.traffic.bytes_up,
                    r.traffic.bytes_down,
                    r.client_cost.bytes_rolled,
                    r.client_cost.bytes_compared,
                    r.client_cost.bytes_strong_hashed,
                );
                Ok(())
            }
            other => Err(format!("unknown command {other:?} (try `help`)")),
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
        pump(&mut sys, &mut fs);
    }
}

fn atty_stdin() -> bool {
    // No libc dependency: treat piped input as non-interactive by probing
    // the TERM-ish environment; prompts in pipes are harmless anyway, so a
    // simple heuristic suffices.
    std::env::var_os("TERM").is_some() && std::env::var_os("DELTACFS_SIM_PIPE").is_none()
}

fn pump(sys: &mut DeltaCfsSystem, fs: &mut Vfs) {
    for e in fs.drain_events() {
        sys.on_event(&e, fs);
    }
}

fn do_write(fs: &mut Vfs, path: &str, text: &str, append: bool) -> Result<(), String> {
    if path.is_empty() {
        return Err("usage: write <path> <text>".into());
    }
    if !fs.exists(path) {
        fs.create(path).map_err(|e| e.to_string())?;
    }
    let offset = if append {
        fs.metadata(path).map(|m| m.size).unwrap_or(0)
    } else {
        0
    };
    fs.write(path, offset, text.as_bytes())
        .map_err(|e| e.to_string())
}

/// A Word-style transactional save: rename away, write a temp, rename it
/// back, delete the old copy — the pattern the relation table recognizes.
fn do_save(
    fs: &mut Vfs,
    sys: &mut DeltaCfsSystem,
    path: &str,
    text: &str,
    counter: &mut u64,
) -> Result<(), String> {
    if path.is_empty() {
        return Err("usage: save <path> <text>".into());
    }
    if !fs.exists(path) {
        fs.create(path).map_err(|e| e.to_string())?;
        fs.write(path, 0, text.as_bytes())
            .map_err(|e| e.to_string())?;
        return Ok(());
    }
    *counter += 1;
    let old = format!("{path}.old{counter}");
    let tmp = format!("{path}.tmp{counter}");
    fs.rename(path, &old).map_err(|e| e.to_string())?;
    pump(sys, fs);
    fs.create(&tmp).map_err(|e| e.to_string())?;
    pump(sys, fs);
    fs.write(&tmp, 0, text.as_bytes())
        .map_err(|e| e.to_string())?;
    pump(sys, fs);
    fs.close_path(&tmp).map_err(|e| e.to_string())?;
    pump(sys, fs);
    fs.rename(&tmp, path).map_err(|e| e.to_string())?;
    pump(sys, fs);
    fs.unlink(&old).map_err(|e| e.to_string())?;
    pump(sys, fs);
    println!("(transactional save complete — delta will ship on next sync)");
    Ok(())
}
