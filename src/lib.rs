//! # DeltaCFS
//!
//! A from-scratch Rust reproduction of **"DeltaCFS: Boosting Delta Sync
//! for Cloud Storage Services by Learning from NFS"** (Zhang et al.,
//! ICDCS 2017): a file-sync framework that adaptively combines *NFS-like
//! file RPC* (ship intercepted write operations verbatim) with *delta
//! sync* (triggered only for transactional updates, computed locally with
//! bitwise comparison instead of MD5).
//!
//! This crate is the facade over the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `deltacfs-core` | relation table, sync queue (+backindex), versioning, checksum store, undo log, client engine, cloud server, multi-client hub |
//! | [`vfs`] | `deltacfs-vfs` | in-memory file system with operation interception (the FUSE stand-in) |
//! | [`delta`] | `deltacfs-delta` | rsync, the local bitwise variant, CDC, fixed-block dedup, LZ compression, MD5 |
//! | [`kvstore`] | `deltacfs-kvstore` | WAL + memtable + segment KV store (the LevelDB stand-in) |
//! | [`net`] | `deltacfs-net` | virtual clock, accounted links, platform cost profiles |
//! | [`obs`] | `deltacfs-obs` | metrics registry, structured sync-pipeline tracing, flight recorder |
//! | [`baselines`] | `deltacfs-baselines` | Dropbox-, Seafile-, NFS- and Dropsync-like engines |
//! | [`workloads`] | `deltacfs-workloads` | the §IV-A traces, filebench personalities, replay driver |
//!
//! # Quickstart
//!
//! ```
//! use deltacfs::core::{ClientId, CloudServer, DeltaCfsClient, DeltaCfsConfig};
//! use deltacfs::net::SimClock;
//! use deltacfs::vfs::Vfs;
//!
//! let clock = SimClock::new();
//! let mut client = DeltaCfsClient::new(ClientId(1), DeltaCfsConfig::new(), clock.clone());
//! let mut server = CloudServer::new();
//! let mut fs = Vfs::new();
//! fs.enable_event_log();
//!
//! fs.create("/hello.txt")?;
//! fs.write("/hello.txt", 0, b"hello, cloud")?;
//! for event in fs.drain_events() {
//!     client.handle_event(&event, &fs);
//! }
//! clock.advance(4_000);
//! for group in client.tick(&fs) {
//!     server.apply_txn(&group);
//! }
//! assert_eq!(server.file("/hello.txt"), Some(&b"hello, cloud"[..]));
//! # Ok::<(), deltacfs::vfs::VfsError>(())
//! ```
//!
//! Runnable examples live in `examples/` (`cargo run --example
//! quickstart`), and the full paper evaluation regenerates with
//! `cargo run -p deltacfs-bench --release --bin repro -- all`.

#![warn(missing_docs)]

pub use deltacfs_baselines as baselines;
pub use deltacfs_core as core;
pub use deltacfs_delta as delta;
pub use deltacfs_kvstore as kvstore;
pub use deltacfs_net as net;
pub use deltacfs_obs as obs;
pub use deltacfs_vfs as vfs;
pub use deltacfs_workloads as workloads;
